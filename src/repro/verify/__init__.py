"""The Antidote-style verifier: abstract learners and robustness certification.

* :mod:`repro.verify.transformers` — the abstract transformers of §4.4–4.6
  (``cprob#``, ``ent#``, ``score#``, ``filter#``, ``bestSplit#``, ``pure``).
* :mod:`repro.verify.abstract_learner` — ``DTrace#`` on the base (Box) domain.
* :mod:`repro.verify.disjunctive_learner` — ``DTrace#`` on the disjunctive
  domain of §5.2.
* :mod:`repro.verify.robustness` — the certification driver implementing
  Corollary 4.12, with timeouts and resource limits.
* :mod:`repro.verify.enumeration` — the naïve enumeration baseline of §2.
* :mod:`repro.verify.search` — the poisoning-amount search protocol of §6.1.
"""

from repro.verify.abstract_learner import AbstractRunResult, BoxAbstractLearner
from repro.verify.disjunctive_learner import DisjunctiveAbstractLearner
from repro.verify.enumeration import EnumerationResult, verify_by_enumeration
from repro.verify.robustness import (
    PoisoningVerifier,
    VerificationResult,
    VerificationStatus,
)
from repro.verify.search import (
    ParetoFrontierResult,
    PoisoningSearchResult,
    max_certified_poisoning,
    pareto_frontier,
    pareto_sweep,
    robustness_sweep,
)

__all__ = [
    "AbstractRunResult",
    "BoxAbstractLearner",
    "DisjunctiveAbstractLearner",
    "EnumerationResult",
    "verify_by_enumeration",
    "ParetoFrontierResult",
    "PoisoningSearchResult",
    "PoisoningVerifier",
    "VerificationResult",
    "VerificationStatus",
    "max_certified_poisoning",
    "pareto_frontier",
    "pareto_sweep",
    "robustness_sweep",
]
