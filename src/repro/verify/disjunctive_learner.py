"""The abstract learner ``DTrace#`` on the disjunctive domain (§5.2).

Instead of joining the abstract training sets produced by different predicate
choices (the precision bottleneck identified in Example 5.3), the disjunctive
learner keeps one disjunct per surviving control-flow path: each predicate
returned by ``bestSplit#`` spawns its own disjunct, and a symbolic predicate
whose evaluation on the test point is *maybe* spawns a disjunct for each
branch.  Exits accumulate across iterations; the point is certified robust
only if the **same** class dominates in every exit disjunct.

Precision is higher than the Box domain by construction, but the number of
disjuncts can grow exponentially with the tree depth, so the learner enforces
a configurable disjunct budget and a cooperative time budget, mirroring the
timeouts and out-of-memory failures reported in the paper's evaluation.

The learner is domain-generic: through the dispatching transformers of
:mod:`repro.verify.transformers` it interprets removal elements ``⟨T, n⟩``
and flip/composite elements ``⟨T, r, f⟩`` alike, so label-flip and combined
removal+flip certificates get the same disjunctive precision boost
(``domain="disjuncts"/"either"`` on the engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.predicates import point_satisfies
from repro.domains.interval import Interval, dominating_component, join_interval_vectors
from repro.domains.trainingset import AbstractTrainingSet
from repro.telemetry import profiling
from repro.utils.timing import TimeBudget
from repro.verify.abstract_learner import AbstractRunResult
from repro.verify.transformers import (
    best_split_abstract,
    cprob_intervals,
    entropy_is_definitely_zero,
    pure_exit_vector,
)


class DisjunctBudgetExceeded(RuntimeError):
    """Raised when the number of live disjuncts exceeds the configured budget."""


@dataclass(frozen=True)
class DisjunctiveRunResult(AbstractRunResult):
    """Result of a disjunctive run; adds the per-exit dominating classes."""

    exit_robust_classes: Tuple[Optional[int], ...] = ()

    @property
    def robust_class(self) -> Optional[int]:
        """The class dominating *every* exit disjunct, if any (Cor. 4.12)."""
        if not self.exit_robust_classes:
            return None
        first = self.exit_robust_classes[0]
        if first is None:
            return None
        if all(label == first for label in self.exit_robust_classes):
            return first
        return None


@dataclass
class DisjunctiveAbstractLearner:
    """``DTrace#`` over the disjunctive domain of §5.2.

    Parameters mirror :class:`repro.verify.abstract_learner.BoxAbstractLearner`
    plus ``max_disjuncts``, the resource limit on simultaneously live
    disjuncts (live + exited).  Exceeding it raises
    :class:`DisjunctBudgetExceeded`, which the robustness driver reports as a
    resource-exhausted (inconclusive) outcome.
    """

    max_depth: int = 2
    cprob_method: str = "optimal"
    predicate_pool: Optional[Sequence] = None
    max_disjuncts: int = 4096

    def run(
        self,
        trainset: AbstractTrainingSet,
        x: Sequence[float],
        *,
        time_budget: Optional[TimeBudget] = None,
    ) -> DisjunctiveRunResult:
        budget = time_budget or TimeBudget.unlimited()
        live: List[AbstractTrainingSet] = [trainset]
        # point_satisfies(predicate, x) is a pure function of the (interned)
        # predicate for this run's fixed x — memoize it across the thousands
        # of disjuncts that re-test the same candidates.
        verdict_cache: dict = {}
        # Exits are kept as classification vectors, not states: that is all
        # the join needs, and the flip domain's pure exits have no state form
        # (see transformers.pure_exit_vector).
        exit_vectors: List[Tuple[Interval, ...]] = []
        iterations = 0
        peak_disjuncts = 1

        for _ in range(self.max_depth):
            if not live:
                break
            iterations += 1
            next_live: List[AbstractTrainingSet] = []
            for state in live:
                budget.check()

                pure = pure_exit_vector(state, self.cprob_method)
                if pure is not None:
                    exit_vectors.append(pure)
                if entropy_is_definitely_zero(state, self.cprob_method):
                    continue

                predicates = best_split_abstract(
                    state, method=self.cprob_method, predicate_pool=self.predicate_pool
                )
                if predicates.includes_null:
                    with profiling.phase("cprob_exit"):
                        exit_vectors.append(
                            cprob_intervals(state, self.cprob_method)
                        )
                with profiling.phase("disjunct_split"):
                    for predicate in predicates.without_null():
                        branches = verdict_cache.get(predicate)
                        if branches is None:
                            verdict = point_satisfies(predicate, x)
                            branches = []
                            if verdict.possibly_true:
                                branches.append(True)
                            if verdict.possibly_false:
                                branches.append(False)
                            verdict_cache[predicate] = branches
                        for branch in branches:
                            child = state.split_down(predicate, branch)
                            if child.size == 0:
                                # The branch is infeasible for every
                                # concretization (only possible for the
                                # uncertain side of a symbolic predicate);
                                # drop it.
                                continue
                            next_live.append(child)
                self._check_budget(len(next_live) + len(exit_vectors))
            live = next_live
            peak_disjuncts = max(peak_disjuncts, len(live) + len(exit_vectors))

        with profiling.phase("cprob_exit"):
            exit_vectors.extend(
                cprob_intervals(state, self.cprob_method) for state in live
            )
        self._check_budget(len(exit_vectors))

        n_classes = trainset.dataset.n_classes
        if not exit_vectors:
            joined: Tuple[Interval, ...] = tuple(
                Interval.unit() for _ in range(n_classes)
            )
            per_exit: Tuple[Optional[int], ...] = ()
        else:
            joined = exit_vectors[0]
            for vector in exit_vectors[1:]:
                joined = join_interval_vectors(joined, vector)
            per_exit = tuple(dominating_component(vector) for vector in exit_vectors)

        return DisjunctiveRunResult(
            class_intervals=joined,
            exit_count=len(exit_vectors),
            iterations=iterations,
            max_disjuncts=peak_disjuncts,
            exit_robust_classes=per_exit,
        )

    def _check_budget(self, count: int) -> None:
        if count > self.max_disjuncts:
            raise DisjunctBudgetExceeded(
                f"disjunct budget of {self.max_disjuncts} exceeded ({count} disjuncts)"
            )
