"""The abstract learner ``DTrace#`` on the base (Box) abstract domain (§4.3–4.8).

The learner state is the pair ``(⟨T, n⟩, Ψ)``.  Each iteration abstractly
interprets one step of the concrete trace learner of Figure 4:

1. the ``ent(T) = 0`` conditional — the *then* branch exits with the state
   restricted to pure concretizations (§4.7), the *else* branch continues
   unrestricted;
2. ``bestSplit#`` — computes the set of predicates that could be optimal for
   some concretization (possibly including ``⋄``);
3. the ``φ = ⋄`` conditional — the *then* branch exits with the current state;
4. ``filter#`` — keeps (a join of) the sides of the splits that the test
   point ``x`` traverses.

The classification of each exit state is the vector of ``cprob#`` intervals
of its abstract training set; the learner's overall result joins those
vectors componentwise.  Corollary 4.12 then certifies robustness when a
single class interval dominates all others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.domains.interval import Interval, dominating_component, join_interval_vectors
from repro.domains.trainingset import AbstractTrainingSet
from repro.telemetry import profiling
from repro.utils.timing import TimeBudget
from repro.verify.trace import LadderTrace, TraceStep, filter_abstract_traced
from repro.verify.transformers import (
    best_split_abstract,
    cprob_intervals,
    entropy_is_definitely_zero,
    pure_exit_vector,
)


@dataclass(frozen=True)
class AbstractRunResult:
    """The outcome of one abstract-learner run on a single test input.

    Attributes
    ----------
    class_intervals:
        Componentwise join of the ``cprob#`` vectors of all exit states — a
        sound overapproximation of the class-probability vector the concrete
        learner could produce on any poisoned training set.
    robust_class:
        The dominating class per Corollary 4.12, or ``None`` when no class
        dominates (verification inconclusive).
    exit_count:
        Number of exit states (or exit disjuncts) that were joined.
    iterations:
        Number of loop iterations actually interpreted.
    max_disjuncts:
        Peak number of simultaneously live disjuncts (1 for the Box domain).
    trace:
        The :class:`~repro.verify.trace.LadderTrace` of this run's filter
        steps (Box runs only) — the warm-start input for the next budget
        probe of the same (point, family).
    trace_steps / trace_reused:
        How many filter steps the run executed, and how many of those were
        served by replaying a warm trace instead of the split/join kernels.
    """

    class_intervals: Tuple[Interval, ...]
    exit_count: int
    iterations: int
    max_disjuncts: int = 1
    trace: Optional[LadderTrace] = field(default=None, repr=False, compare=False)
    trace_steps: int = 0
    trace_reused: int = 0

    @property
    def robust_class(self) -> Optional[int]:
        return dominating_component(self.class_intervals)

    @property
    def is_conclusive(self) -> bool:
        return self.robust_class is not None


@dataclass
class BoxAbstractLearner:
    """``DTrace#`` over the non-disjunctive product domain.

    Parameters
    ----------
    max_depth:
        The ``d`` of Figure 4 (the learner loop bound).
    cprob_method:
        ``"optimal"`` (footnote 6, the default used in the paper's
        implementation) or ``"box"`` (the naïve transformer of §4.4).
    predicate_pool:
        Optional fixed predicate set Φ.  When omitted, candidates are derived
        from the data at each step: concrete ``x <= 0.5`` predicates for
        boolean features and symbolic threshold predicates (Appendix B) for
        real-valued features.
    """

    max_depth: int = 2
    cprob_method: str = "optimal"
    predicate_pool: Optional[Sequence] = None

    def run(
        self,
        trainset: AbstractTrainingSet,
        x: Sequence[float],
        *,
        time_budget: Optional[TimeBudget] = None,
        warm_trace: Optional[LadderTrace] = None,
    ) -> AbstractRunResult:
        """Abstractly interpret ``DTrace(T', x)`` for every ``T' ∈ γ(⟨T, n⟩)``.

        Exits are collected as their ``cprob#`` vectors rather than as states:
        the classification of an exit is all the learner needs, and the flip
        domain's pure exits only exist as interval vectors (see
        :func:`~repro.verify.transformers.pure_exit_vector`).

        ``warm_trace`` is the :class:`~repro.verify.trace.LadderTrace` of a
        prior run on the same (dataset, point, family) at a different budget.
        Each filter step whose abstract decisions are unchanged — same entry
        row set, same ``bestSplit#`` outcome — is replayed from the trace by
        pure budget arithmetic instead of re-running the split/join kernels;
        the first divergent step falls back to the real ``filter#`` (and
        every exit/score computation always runs at the current budget), so
        the result is identical to a cold run by construction.
        """
        budget = time_budget or TimeBudget.unlimited()
        exits: List[Tuple[Interval, ...]] = []
        state = trainset
        iterations = 0
        steps: List[TraceStep] = []
        trace_steps = 0
        trace_reused = 0

        for depth in range(self.max_depth):
            if state is None:
                break
            budget.check()
            iterations += 1

            # --- conditional: ent(T) = 0 -------------------------------------
            pure = pure_exit_vector(state, self.cprob_method)
            if pure is not None:
                exits.append(pure)
            if entropy_is_definitely_zero(state, self.cprob_method):
                # The else branch is infeasible: every concretization is pure.
                state = None
                break

            # --- φ <- bestSplit#(T) ------------------------------------------
            predicates = best_split_abstract(
                state, method=self.cprob_method, predicate_pool=self.predicate_pool
            )

            # --- conditional: φ = ⋄ --------------------------------------------
            if predicates.includes_null:
                with profiling.phase("cprob_exit"):
                    exits.append(cprob_intervals(state, self.cprob_method))
            predicates = predicates.without_null()
            if not predicates.has_concrete_choices:
                state = None
                break

            # --- T <- filter#(T, Ψ, x) -----------------------------------------
            trace_steps += 1
            warm_step = (
                warm_trace.step_at(depth) if warm_trace is not None else None
            )
            if warm_step is not None and warm_step.matches(
                state, predicates.predicates
            ):
                state = warm_step.apply(state)
                trace_reused += 1
                steps.append(warm_step)
            else:
                state, step = filter_abstract_traced(state, predicates, x)
                steps.append(step)

        if state is not None:
            with profiling.phase("cprob_exit"):
                exits.append(cprob_intervals(state, self.cprob_method))

        intervals = self._join_exit_intervals(exits, trainset.dataset.n_classes)
        return AbstractRunResult(
            class_intervals=intervals,
            exit_count=len(exits),
            iterations=iterations,
            max_disjuncts=1,
            trace=LadderTrace(tuple(steps)),
            trace_steps=trace_steps,
            trace_reused=trace_reused,
        )

    def _join_exit_intervals(
        self, exits: List[Tuple[Interval, ...]], n_classes: int
    ) -> Tuple[Interval, ...]:
        if not exits:
            # No feasible exit: should be unreachable, but returning the full
            # [0, 1] vector keeps the result sound.
            return tuple(Interval.unit() for _ in range(n_classes))
        joined = exits[0]
        for vector in exits[1:]:
            joined = join_interval_vectors(joined, vector)
        return joined
