"""The naïve enumeration baseline (§2, "A Naïve Approach").

The baseline explicitly retrains ``DTrace`` on every training set in
``Δn(T)`` and checks whether all of them classify the test point the same
way.  It is exact — it decides robustness rather than approximating it — but
its cost is ``Σ_{i<=n} C(|T|, i)`` retrainings, which the paper shows is
hopeless beyond tiny instances (``~10^{432}`` datasets for the MNIST headline
experiment).

Besides serving as the evaluation baseline, the enumeration oracle is what
the test suite uses to validate the abstract learners: on small datasets,
whenever Antidote reports *robust*, enumeration must agree, and whenever
enumeration finds a counterexample, Antidote must not have certified.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.trace_learner import TraceLearner
from repro.utils.timing import TimeBudget
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class EnumerationResult:
    """Exact robustness verdict obtained by exhaustive retraining."""

    robust: bool
    baseline_prediction: int
    datasets_checked: int
    counterexample_removals: Optional[Tuple[int, ...]]
    counterexample_prediction: Optional[int]
    predictions_seen: Tuple[int, ...]

    @property
    def has_counterexample(self) -> bool:
        return self.counterexample_removals is not None


def enumerate_removal_sets(size: int, n: int):
    """Yield every index tuple of at most ``n`` rows to remove (including none)."""
    for removed in range(0, n + 1):
        yield from itertools.combinations(range(size), removed)


def count_poisoned_datasets(size: int, n: int) -> int:
    """``|Δn(T)|`` for a training set of the given size."""
    import math

    return sum(math.comb(size, i) for i in range(0, min(n, size) + 1))


def verify_by_enumeration(
    dataset: Dataset,
    x: Sequence[float],
    n: int,
    *,
    max_depth: int = 2,
    impurity: str = "gini",
    predicate_pool: Optional[Sequence] = None,
    time_budget: Optional[TimeBudget] = None,
    stop_at_first_counterexample: bool = True,
) -> EnumerationResult:
    """Exactly decide whether ``x`` is robust to ``Δn``-poisoning of ``dataset``.

    Raises
    ------
    repro.utils.timing.TimeoutExceeded
        If a ``time_budget`` is provided and exhausted mid-enumeration.
    """
    n = check_positive_int(n, "n", allow_zero=True)
    budget = time_budget or TimeBudget.unlimited()
    learner = TraceLearner(
        max_depth=max_depth, impurity=impurity, predicate_pool=predicate_pool
    )
    baseline = learner.predict(dataset, x)

    all_indices = np.arange(len(dataset), dtype=np.int64)
    predictions = {baseline}
    checked = 0
    counterexample: Optional[Tuple[int, ...]] = None
    counterexample_prediction: Optional[int] = None

    for removals in enumerate_removal_sets(len(dataset), min(n, len(dataset) - 1)):
        budget.check()
        checked += 1
        if removals:
            kept = np.delete(all_indices, list(removals))
            poisoned = dataset.subset(kept)
        else:
            poisoned = dataset
        prediction = learner.predict(poisoned, x)
        predictions.add(prediction)
        if prediction != baseline and counterexample is None:
            counterexample = tuple(int(i) for i in removals)
            counterexample_prediction = int(prediction)
            if stop_at_first_counterexample:
                break

    return EnumerationResult(
        robust=counterexample is None,
        baseline_prediction=int(baseline),
        datasets_checked=checked,
        counterexample_removals=counterexample,
        counterexample_prediction=counterexample_prediction,
        predictions_seen=tuple(sorted(predictions)),
    )
