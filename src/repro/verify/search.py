"""The certified-budget search protocols of §6.1, generalized over families.

The paper explores, for every test point, how much poisoning it can be proven
robust against: start at ``n = 1``, double ``n`` while the proof still
succeeds, and binary-search between the last success and the first failure.
This module provides that protocol — and its two-dimensional generalization —
for *every* :class:`~repro.poisoning.models.PerturbationModel` family, via the
``with_budget(n)`` / ``with_budgets(r, f)`` rebinding protocol on the models:

* :func:`max_certified_poisoning` — the per-point doubling + binary search,
  returning the largest ``n`` for which the verifier certifies the point.
  The doubling phase clamps its final attempt to ``max_n``, so a cap that is
  not a power of two times the start is still searched exactly (certified at
  8 with ``max_n = 10`` probes 10, then binary-searches 9–10);
* :func:`robustness_sweep` — the dataset-level sweep used to regenerate
  Figure 6: the fraction of test points certified at each budget level,
  re-attempting at level ``n`` only the points that were still certified at
  the previous level (certification is monotonically harder in ``n``, so this
  mirrors the paper's incremental protocol);
* :func:`pareto_frontier` — the composite-family counterpart: the set of
  *maximal* certified ``(n_remove, n_flip)`` pairs of one point under
  componentwise dominance, found by staircase descent (alternating
  largest-certified-flip and largest-certified-removal searches), with local
  pair-dominance derivation so no probe is ever recomputed;
* :func:`pareto_sweep` — the batch frontier over many points, optionally on a
  process pool (``n_jobs``).

All entry points run on the unified :class:`repro.api.CertificationEngine`;
a legacy :class:`~repro.verify.robustness.PoisoningVerifier` is still
accepted and silently unwrapped to its engine.  Engines with an attached
:class:`~repro.runtime.CertificationRuntime` answer probes from the
persistent verdict cache (scalar budget monotonicity for the one-dimensional
families, componentwise ``(r, f)`` pair dominance for the composite family),
so repeated or overlapping searches reuse prior verdicts.
"""

from __future__ import annotations

import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.dataset import Dataset
from repro.poisoning.models import (
    CompositePoisoningModel,
    PerturbationModel,
    RemovalPoisoningModel,
)
from repro.utils.validation import ValidationError
from repro.verify.result import VerificationResult, VerificationStatus
from repro.verify.robustness import PoisoningVerifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import CertificationEngine

#: Either the modern engine or the deprecated shim.
VerifierLike = Union["CertificationEngine", PoisoningVerifier]

#: Anything accepted as the family template of a search: a model instance
#: whose budget is rebound per probe, or ``None`` for the paper's ``Δn``.
ModelTemplate = Optional[PerturbationModel]


def _as_engine(verifier: VerifierLike) -> "CertificationEngine":
    # Duck-typed (rather than isinstance) so this module never has to import
    # the engine at module scope, which would recreate the api/verify cycle.
    engine = getattr(verifier, "engine", None)
    return engine if engine is not None else verifier


def _scalar_template(model: ModelTemplate) -> PerturbationModel:
    """The family template a scalar-budget search sweeps (default: ``Δn``)."""
    if model is None:
        return RemovalPoisoningModel(0)
    if not isinstance(model, PerturbationModel):
        raise ValidationError(
            f"model template must be a PerturbationModel, got {type(model).__name__}"
        )
    # Fail fast on families without a scalar budget (e.g. composite) instead
    # of erroring mid-search on the first probe.
    model.with_budget(0)
    return model


def _pair_template(model: ModelTemplate) -> PerturbationModel:
    """The family template a pair-budget search sweeps (default: ``Δ_{r,f}``)."""
    if model is None:
        return CompositePoisoningModel(0, 0)
    if not isinstance(model, PerturbationModel):
        raise ValidationError(
            f"model template must be a PerturbationModel, got {type(model).__name__}"
        )
    model.with_budgets(0, 0)
    return model


@dataclass(frozen=True)
class PoisoningSearchResult:
    """Outcome of the per-point doubling/binary search.

    ``trace_steps`` / ``trace_reused`` count the Box-learner filter steps the
    probes of this search executed and how many were warm-started from the
    previous probe's ladder trace (zero when the verifier does not expose
    trace accounting — e.g. probes routed through a runtime cache, which
    reports the same numbers on its own sweep outcomes instead).
    """

    max_certified_n: int
    attempts: Dict[int, bool]
    results: Dict[int, VerificationResult]
    trace_steps: int = 0
    trace_reused: int = 0

    @property
    def trace_reuse_fraction(self) -> float:
        return self.trace_reused / self.trace_steps if self.trace_steps else 0.0

    @property
    def ever_certified(self) -> bool:
        return self.max_certified_n > 0


def max_certified_poisoning(
    verifier: VerifierLike,
    dataset: Dataset,
    x: Sequence[float],
    *,
    start: int = 1,
    max_n: Optional[int] = None,
    model: ModelTemplate = None,
) -> PoisoningSearchResult:
    """Find the largest ``n`` (within ``[1, max_n]``) the point is certified for.

    Uses the doubling phase followed by a binary search, assuming (as the
    paper's protocol does) that certification is monotone in ``n``.  The
    ``model`` template selects the family: probes certify against
    ``model.with_budget(n)``, so removal, fractional, and label-flip models
    are all swept by the same machinery (``None`` means the paper's ``Δn``).
    """
    engine = _as_engine(verifier)
    template = _scalar_template(model)
    if max_n is None:
        max_n = len(dataset)
    max_n = min(max_n, len(dataset))
    attempts: Dict[int, bool] = {}
    results: Dict[int, VerificationResult] = {}

    def attempt(n: int) -> bool:
        if n in attempts:
            return attempts[n]
        result = engine.certify_point(dataset, x, template.with_budget(n))
        attempts[n] = result.is_certified
        results[n] = result
        return attempts[n]

    consume_trace = getattr(engine, "consume_trace_stats", None)
    if consume_trace is not None:
        consume_trace()
    # Budget 0 is the trivial floor of the protocol ("never certified"), so
    # this is exactly the shared doubling/clamp/binary-search helper the
    # frontier search uses, with the doubling seeded at ``start``.
    best = _largest_certified(0, max_n, attempt, span=max(1, start))
    trace_steps, trace_reused = (
        consume_trace() if consume_trace is not None else (0, 0)
    )
    return PoisoningSearchResult(
        max_certified_n=best,
        attempts=attempts,
        results=results,
        trace_steps=trace_steps,
        trace_reused=trace_reused,
    )


@dataclass
class SweepRecord:
    """Aggregated verification statistics at one budget level ``n``."""

    poisoning_amount: int
    attempted: int
    certified: int
    fraction_certified: float
    average_seconds: float
    average_peak_memory_bytes: float
    timeouts: int
    resource_exhausted: int
    results: List[VerificationResult] = field(default_factory=list, repr=False)


def robustness_sweep(
    verifier: VerifierLike,
    dataset: Dataset,
    test_points: np.ndarray,
    amounts: Sequence[int],
    *,
    incremental: bool = True,
    keep_results: bool = False,
    n_jobs: int = 1,
    model: ModelTemplate = None,
) -> List[SweepRecord]:
    """Sweep the budget over ``amounts`` and aggregate per level.

    With ``incremental=True`` (the paper's protocol), only the points still
    certified at the previous level are re-attempted at the next level; points
    that already failed count as not certified at every larger ``n``.  With
    ``n_jobs > 1`` each level's batch is certified on a process pool.  The
    ``model`` template selects the family exactly as in
    :func:`max_certified_poisoning`; duplicate entries of ``amounts`` are
    collapsed so no level is ever certified (or recorded) twice.
    """
    engine = _as_engine(verifier)
    template = _scalar_template(model)
    test_points = np.asarray(test_points, dtype=float)
    total = test_points.shape[0]
    if total == 0:
        # Nothing to attempt: no level can produce a meaningful record, and a
        # phantom `attempted=0` row would read as a completed level.
        return []
    active = list(range(total))
    records: List[SweepRecord] = []

    for n in sorted({int(a) for a in amounts}):
        report = engine.certify_batch(
            dataset, test_points[active], template.with_budget(n), n_jobs=n_jobs
        )
        level_results = list(report.results)
        certified_indices = [
            index
            for index, result in zip(active, level_results)
            if result.is_certified
        ]
        counts = report.status_counts
        records.append(
            SweepRecord(
                poisoning_amount=n,
                attempted=len(active),
                certified=len(certified_indices),
                fraction_certified=len(certified_indices) / total,
                average_seconds=report.mean_seconds,
                average_peak_memory_bytes=report.mean_peak_memory_bytes,
                timeouts=counts["timeout"],
                resource_exhausted=counts["resource_exhausted"],
                results=level_results if keep_results else [],
            )
        )
        if incremental:
            active = certified_indices
            if not active:
                break
    return records


# ---------------------------------------------------------------------------
# Composite (r, f) Pareto frontiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParetoFrontierResult:
    """The maximal certified ``(n_remove, n_flip)`` pairs of one test point.

    ``frontier`` lists the maximal elements (under componentwise dominance) of
    the certified region of the ``[0, max_remove] × [0, max_flip]`` budget
    grid, ordered by ascending removal budget (hence descending flip budget —
    a staircase).  An empty frontier means the point was not even certified at
    ``(0, 0)``.  ``attempts`` maps every pair whose verdict the search
    *decided* to its outcome; ``probes`` counts how many of those actually
    queried the verifier (the rest were derived from pair dominance locally).
    """

    frontier: Tuple[Tuple[int, int], ...]
    attempts: Dict[Tuple[int, int], bool]
    probes: int
    results: Dict[Tuple[int, int], VerificationResult] = field(repr=False, default_factory=dict)
    trace_steps: int = 0
    trace_reused: int = 0

    @property
    def trace_reuse_fraction(self) -> float:
        return self.trace_reused / self.trace_steps if self.trace_steps else 0.0

    @property
    def ever_certified(self) -> bool:
        return bool(self.frontier)

    def dominates(self, n_remove: int, n_flip: int) -> bool:
        """Whether the certified region covers the pair ``(n_remove, n_flip)``."""
        return any(r >= n_remove and f >= n_flip for r, f in self.frontier)

    def to_dict(self) -> dict:
        """JSON-serializable summary (the report/CLI frontier export rows)."""
        return {
            "frontier": [[r, f] for r, f in self.frontier],
            "probes": self.probes,
            "attempted_pairs": len(self.attempts),
        }


class _PairOracle:
    """Memoized certified/uncertified queries over the ``(r, f)`` pair lattice.

    Answers repeat queries from local componentwise dominance — ``robust`` at
    a dominating pair, or ``unknown`` at a dominated pair, decides the query
    without touching the verifier — mirroring exactly the derivation rules of
    the runtime cache, so the frontier search stays cheap even on engines
    with no runtime attached.  Timeout / resource-exhausted outcomes count as
    "not certified" for the probe that saw them but are never used to derive
    other pairs (they are environmental, not facts about the proof problem).
    """

    def __init__(
        self,
        engine: "CertificationEngine",
        dataset: Dataset,
        x: Sequence[float],
        template: PerturbationModel,
    ) -> None:
        self._engine = engine
        self._dataset = dataset
        self._x = x
        self._template = template
        self.attempts: Dict[Tuple[int, int], bool] = {}
        self.results: Dict[Tuple[int, int], VerificationResult] = {}
        self.probes = 0

    def _derive(self, pair: Tuple[int, int]) -> Optional[bool]:
        removals, flips = pair
        for (r, f), result in self.results.items():
            if (
                result.status is VerificationStatus.ROBUST
                and r >= removals
                and f >= flips
            ):
                return True
            if (
                result.status is VerificationStatus.UNKNOWN
                and r <= removals
                and f <= flips
            ):
                return False
        return None

    def certified(self, removals: int, flips: int) -> bool:
        pair = (removals, flips)
        known = self.attempts.get(pair)
        if known is not None:
            return known
        derived = self._derive(pair)
        if derived is not None:
            self.attempts[pair] = derived
            return derived
        result = self._engine.certify_point(
            self._dataset, self._x, self._template.with_budgets(removals, flips)
        )
        self.probes += 1
        self.results[pair] = result
        self.attempts[pair] = result.is_certified
        return result.is_certified


def _largest_certified(
    lo: int, hi: int, certified: Callable[[int], bool], *, span: int = 1
) -> int:
    """Largest value in ``[lo, hi]`` satisfying ``certified``.

    Precondition: ``certified(lo)`` holds (or ``lo`` is the protocol's
    trivial floor).  This is the one copy of the §6.1 protocol, shared by
    the scalar budget search and the frontier staircase: doubling on the
    offset from ``lo`` (seeded at ``span``) with the final attempt clamped
    to ``hi``, then binary search between the last success and the first
    failure — ``O(log(hi - lo))`` probes.
    """
    if hi <= lo:
        return lo
    best = lo
    first_failure: Optional[int] = None
    while lo + span <= hi:
        if certified(lo + span):
            best = lo + span
            span *= 2
        else:
            first_failure = lo + span
            break
    if first_failure is None and best < hi:
        if certified(hi):
            return hi
        first_failure = hi
    if first_failure is None:
        return best
    low, high = best, first_failure
    while high - low > 1:
        mid = (low + high) // 2
        if certified(mid):
            low = mid
        else:
            high = mid
    return low


def pareto_frontier(
    verifier: VerifierLike,
    dataset: Dataset,
    x: Sequence[float],
    *,
    max_remove: Optional[int] = None,
    max_flip: Optional[int] = None,
    model: ModelTemplate = None,
) -> ParetoFrontierResult:
    """The maximal certified ``(n_remove, n_flip)`` pairs of one test point.

    Walks the pair lattice by **staircase descent**: starting at ``r = 0``,
    alternately find the largest certified flip budget at the current removal
    budget, then the largest removal budget still certified at that flip
    level — each an O(log) doubling/binary search — emit the corner, and
    continue below-right of it.  Certification is monotone under componentwise
    dominance (``Δ_{r',f'} ⊆ Δ_{r,f}`` iff ``r' ≤ r ∧ f' ≤ f``), so the
    corners are exactly the maximal certified pairs of the grid.

    Probes certify against ``model.with_budgets(r, f)`` (``None`` means a
    plain :class:`~repro.poisoning.models.CompositePoisoningModel`); when the
    engine has a :class:`~repro.runtime.CertificationRuntime` attached, every
    probe flows through the persistent cache's pair-dominance derivation, so
    overlapping frontiers — and re-runs of the same frontier — reuse prior
    verdicts instead of re-running the learner.
    """
    engine = _as_engine(verifier)
    template = _pair_template(model)
    size = len(dataset)
    max_remove = size if max_remove is None else min(int(max_remove), size)
    max_flip = size if max_flip is None else min(int(max_flip), size)
    if max_remove < 0 or max_flip < 0:
        raise ValidationError("max_remove and max_flip must be non-negative")

    oracle = _PairOracle(engine, dataset, x, template)
    consume_trace = getattr(engine, "consume_trace_stats", None)
    if consume_trace is not None:
        consume_trace()
    frontier: List[Tuple[int, int]] = []
    r_lo = 0
    f_hi = max_flip
    while r_lo <= max_remove and oracle.certified(r_lo, 0):
        # Tallest certified flip budget at this removal level (monotonicity
        # bounds it by the previous corner's flip level minus one).
        f = _largest_certified(0, f_hi, lambda q: oracle.certified(r_lo, q))
        # Widest certified removal budget at that flip level.
        r = _largest_certified(
            r_lo, max_remove, lambda q: oracle.certified(q, f)
        )
        frontier.append((r, f))
        r_lo = r + 1
        if f == 0:
            break
        f_hi = f - 1
    trace_steps, trace_reused = (
        consume_trace() if consume_trace is not None else (0, 0)
    )
    return ParetoFrontierResult(
        frontier=tuple(frontier),
        attempts=dict(oracle.attempts),
        probes=oracle.probes,
        results=dict(oracle.results),
        trace_steps=trace_steps,
        trace_reused=trace_reused,
    )


def pareto_sweep(
    verifier: VerifierLike,
    dataset: Dataset,
    points: np.ndarray,
    *,
    max_remove: Optional[int] = None,
    max_flip: Optional[int] = None,
    model: ModelTemplate = None,
    n_jobs: int = 1,
) -> List[ParetoFrontierResult]:
    """Per-point Pareto frontiers for every row of ``points`` (order preserved).

    With ``n_jobs > 1`` the points are distributed over a process pool; each
    worker runs the staircase descent for its points against a private engine
    copy (pool workers have no runtime attached, so cross-point cache sharing
    only happens in the serial path — exactly as for batch certification).
    Pool failures fall back to serial computation.
    """
    engine = _as_engine(verifier)
    template = _pair_template(model)
    rows = [np.asarray(row, dtype=float) for row in np.asarray(points, dtype=float)]
    workers = min(int(n_jobs), len(rows))
    if workers > 1:
        yielded = 0
        outcomes: List[ParetoFrontierResult] = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pareto_pool_initializer,
                initargs=(engine, dataset, template, max_remove, max_flip),
            ) as executor:
                for outcome in executor.map(_pareto_pool_frontier, rows):
                    yielded += 1
                    outcomes.append(outcome)
            return outcomes
        except (OSError, BrokenExecutor) as error:
            warnings.warn(
                f"process pool unavailable ({error}); falling back to serial "
                "frontier computation",
                RuntimeWarning,
                stacklevel=2,
            )
            rows = rows[yielded:]
            outcomes.extend(
                pareto_frontier(
                    engine,
                    dataset,
                    row,
                    max_remove=max_remove,
                    max_flip=max_flip,
                    model=template,
                )
                for row in rows
            )
            return outcomes
    return [
        pareto_frontier(
            engine,
            dataset,
            row,
            max_remove=max_remove,
            max_flip=max_flip,
            model=template,
        )
        for row in rows
    ]


# ---------------------------------------------------------------------------
# Process-pool plumbing for pareto_sweep (mirrors the engine's batch pool).
# ---------------------------------------------------------------------------

_PARETO_POOL_STATE: dict = {}


def _pareto_pool_initializer(
    engine: "CertificationEngine",
    dataset: Dataset,
    template: PerturbationModel,
    max_remove: Optional[int],
    max_flip: Optional[int],
) -> None:
    _PARETO_POOL_STATE["engine"] = engine
    _PARETO_POOL_STATE["dataset"] = dataset
    _PARETO_POOL_STATE["template"] = template
    _PARETO_POOL_STATE["max_remove"] = max_remove
    _PARETO_POOL_STATE["max_flip"] = max_flip


def _pareto_pool_frontier(row: np.ndarray) -> ParetoFrontierResult:
    state = _PARETO_POOL_STATE
    outcome = pareto_frontier(
        state["engine"],
        state["dataset"],
        row,
        max_remove=state["max_remove"],
        max_flip=state["max_flip"],
        model=state["template"],
    )
    # Full per-pair results are heavy (interval tuples per probe) and
    # irrelevant to batch consumers; ship the frontier summary only.
    return ParetoFrontierResult(
        frontier=outcome.frontier,
        attempts=outcome.attempts,
        probes=outcome.probes,
    )
