"""The poisoning-amount search protocol of §6.1.

The paper explores, for every test point, how much poisoning it can be proven
robust against: start at ``n = 1``, double ``n`` while the proof still
succeeds for some points, and binary-search between the last success and the
first failure.  This module provides:

* :func:`max_certified_poisoning` — the per-point doubling + binary search,
  returning the largest ``n`` for which the verifier certifies the point;
* :func:`robustness_sweep` — the dataset-level sweep used to regenerate
  Figure 6: the fraction of test points certified at each poisoning level,
  re-attempting at level ``n`` only the points that were still certified at
  the previous level (certification is monotonically harder in ``n``, so this
  mirrors the paper's incremental protocol).

Both entry points run on the unified :class:`repro.api.CertificationEngine`;
a legacy :class:`~repro.verify.robustness.PoisoningVerifier` is still
accepted and silently unwrapped to its engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.poisoning.models import RemovalPoisoningModel
from repro.verify.result import VerificationResult
from repro.verify.robustness import PoisoningVerifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import CertificationEngine

#: Either the modern engine or the deprecated shim.
VerifierLike = Union["CertificationEngine", PoisoningVerifier]


def _as_engine(verifier: VerifierLike) -> "CertificationEngine":
    # Duck-typed (rather than isinstance) so this module never has to import
    # the engine at module scope, which would recreate the api/verify cycle.
    engine = getattr(verifier, "engine", None)
    return engine if engine is not None else verifier


@dataclass(frozen=True)
class PoisoningSearchResult:
    """Outcome of the per-point doubling/binary search."""

    max_certified_n: int
    attempts: Dict[int, bool]
    results: Dict[int, VerificationResult]

    @property
    def ever_certified(self) -> bool:
        return self.max_certified_n > 0


def max_certified_poisoning(
    verifier: VerifierLike,
    dataset: Dataset,
    x: Sequence[float],
    *,
    start: int = 1,
    max_n: Optional[int] = None,
) -> PoisoningSearchResult:
    """Find the largest ``n`` (within ``[1, max_n]``) the point is certified for.

    Uses the doubling phase followed by a binary search, assuming (as the
    paper's protocol does) that certification is monotone in ``n``.
    """
    engine = _as_engine(verifier)
    if max_n is None:
        max_n = len(dataset)
    max_n = min(max_n, len(dataset))
    attempts: Dict[int, bool] = {}
    results: Dict[int, VerificationResult] = {}

    def attempt(n: int) -> bool:
        if n in attempts:
            return attempts[n]
        result = engine.certify_point(dataset, x, RemovalPoisoningModel(n))
        attempts[n] = result.is_certified
        results[n] = result
        return attempts[n]

    # Doubling phase.
    n = max(1, start)
    best = 0
    first_failure: Optional[int] = None
    while n <= max_n:
        if attempt(n):
            best = n
            n *= 2
        else:
            first_failure = n
            break
    if first_failure is None:
        return PoisoningSearchResult(max_certified_n=best, attempts=attempts, results=results)

    # Binary search between the last success and the first failure.
    low, high = best, first_failure
    while high - low > 1:
        mid = (low + high) // 2
        if attempt(mid):
            low = mid
        else:
            high = mid
    return PoisoningSearchResult(max_certified_n=low, attempts=attempts, results=results)


@dataclass
class SweepRecord:
    """Aggregated verification statistics at one poisoning level ``n``."""

    poisoning_amount: int
    attempted: int
    certified: int
    fraction_certified: float
    average_seconds: float
    average_peak_memory_bytes: float
    timeouts: int
    resource_exhausted: int
    results: List[VerificationResult] = field(default_factory=list, repr=False)


def robustness_sweep(
    verifier: VerifierLike,
    dataset: Dataset,
    test_points: np.ndarray,
    amounts: Sequence[int],
    *,
    incremental: bool = True,
    keep_results: bool = False,
    n_jobs: int = 1,
) -> List[SweepRecord]:
    """Sweep the poisoning amount over ``amounts`` and aggregate per level.

    With ``incremental=True`` (the paper's protocol), only the points still
    certified at the previous level are re-attempted at the next level; points
    that already failed count as not certified at every larger ``n``.  With
    ``n_jobs > 1`` each level's batch is certified on a process pool.
    """
    engine = _as_engine(verifier)
    test_points = np.asarray(test_points, dtype=float)
    total = test_points.shape[0]
    active = list(range(total))
    records: List[SweepRecord] = []

    for n in sorted(int(a) for a in amounts):
        report = engine.certify_batch(
            dataset, test_points[active], RemovalPoisoningModel(n), n_jobs=n_jobs
        )
        level_results = list(report.results)
        certified_indices = [
            index
            for index, result in zip(active, level_results)
            if result.is_certified
        ]
        counts = report.status_counts
        records.append(
            SweepRecord(
                poisoning_amount=n,
                attempted=len(active),
                certified=len(certified_indices),
                fraction_certified=len(certified_indices) / total if total else 0.0,
                average_seconds=report.mean_seconds,
                average_peak_memory_bytes=report.mean_peak_memory_bytes,
                timeouts=counts["timeout"],
                resource_exhausted=counts["resource_exhausted"],
                results=level_results if keep_results else [],
            )
        )
        if incremental:
            active = certified_indices
            if not active:
                break
    return records
