"""The robustness certification driver (Corollary 4.12 plus resource handling).

:class:`PoisoningVerifier` wraps the abstract learners into the end-to-end
workflow the paper evaluates: given a training set, a test point, and a
poisoning budget ``n``, it runs ``DTrace#`` on the initial abstraction
``⟨T, n⟩`` and reports whether a single class interval dominates (the point is
*certified robust*), or whether the analysis was inconclusive, timed out, or
exhausted its disjunct/memory budget — the same three failure modes reported
in §6.1 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.trace_learner import TraceLearner
from repro.domains.interval import Interval
from repro.domains.trainingset import AbstractTrainingSet
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch, TimeBudget, TimeoutExceeded
from repro.verify.abstract_learner import AbstractRunResult, BoxAbstractLearner
from repro.verify.disjunctive_learner import (
    DisjunctBudgetExceeded,
    DisjunctiveAbstractLearner,
)

#: The abstract domains the verifier can use.  ``"either"`` mimics the paper's
#: headline experiment (Figure 6), which counts a point as verified when at
#: least one of the two domains succeeds.
DOMAINS = ("box", "disjuncts", "either")


class VerificationStatus(enum.Enum):
    """Outcome of a verification attempt."""

    ROBUST = "robust"
    UNKNOWN = "unknown"
    TIMEOUT = "timeout"
    RESOURCE_EXHAUSTED = "resource_exhausted"

    @property
    def is_certified(self) -> bool:
        return self is VerificationStatus.ROBUST


@dataclass(frozen=True)
class VerificationResult:
    """The result of certifying one test point against ``n``-poisoning.

    Attributes
    ----------
    status:
        Whether robustness was proven (``ROBUST``) or why not.
    poisoning_amount:
        The ``n`` of the ``Δn`` perturbation model that was checked.
    predicted_class:
        The concrete prediction of ``DTrace`` on the unpoisoned training set.
    certified_class:
        The dominating class of the abstract result when ``status`` is
        ``ROBUST`` (always equal to ``predicted_class`` by soundness).
    class_intervals:
        The abstract class-probability intervals of the (joined) exit states.
    domain:
        Which abstract domain produced the reported result.
    elapsed_seconds / peak_memory_bytes:
        Wall-clock time and peak Python-heap allocation of the attempt.
    log10_num_datasets:
        ``log10 |Δn(T)|`` — the size of the space a naïve enumeration baseline
        would need to explore.
    """

    status: VerificationStatus
    poisoning_amount: int
    predicted_class: int
    certified_class: Optional[int]
    class_intervals: Tuple[Interval, ...]
    domain: str
    elapsed_seconds: float
    peak_memory_bytes: int
    exit_count: int
    max_disjuncts: int
    log10_num_datasets: float
    message: str = ""

    @property
    def is_certified(self) -> bool:
        return self.status.is_certified

    def to_dict(self) -> dict:
        """Return a JSON-serializable summary (for logs, CSV export, dashboards)."""
        return {
            "status": self.status.value,
            "poisoning_amount": self.poisoning_amount,
            "predicted_class": self.predicted_class,
            "certified_class": self.certified_class,
            "class_intervals": [[interval.lo, interval.hi] for interval in self.class_intervals],
            "domain": self.domain,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "exit_count": self.exit_count,
            "max_disjuncts": self.max_disjuncts,
            "log10_num_datasets": self.log10_num_datasets,
            "message": self.message,
        }

    def describe(self) -> str:
        intervals = ", ".join(str(interval) for interval in self.class_intervals)
        return (
            f"{self.status.value} (n={self.poisoning_amount}, domain={self.domain}, "
            f"prediction={self.predicted_class}, intervals=[{intervals}], "
            f"time={self.elapsed_seconds:.3f}s)"
        )


@dataclass
class PoisoningVerifier:
    """Certify test points against the ``Δn`` data-poisoning model.

    Parameters
    ----------
    max_depth:
        Decision-tree depth ``d`` of the learner being verified (1–4 in the
        paper's evaluation).
    domain:
        ``"box"``, ``"disjuncts"``, or ``"either"`` (try Box first, fall back
        to the more precise but more expensive disjunctive domain).
    cprob_method:
        ``"optimal"`` (default, footnote 6) or ``"box"``.
    timeout_seconds:
        Per-point wall-clock budget; ``None`` disables the timeout.
    max_disjuncts:
        Resource limit of the disjunctive learner.
    predicate_pool:
        Optional fixed predicate set Φ shared by the concrete and abstract
        learners.
    """

    max_depth: int = 2
    domain: str = "either"
    cprob_method: str = "optimal"
    timeout_seconds: Optional[float] = None
    max_disjuncts: int = 4096
    predicate_pool: Optional[Sequence] = None
    impurity: str = "gini"
    _trace_learner: TraceLearner = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.domain not in DOMAINS:
            raise ValueError(f"domain must be one of {DOMAINS}, got {self.domain!r}")
        self._trace_learner = TraceLearner(
            max_depth=self.max_depth,
            impurity=self.impurity,
            predicate_pool=self.predicate_pool,
        )

    # ----------------------------------------------------------------- public
    def verify(self, dataset: Dataset, x: Sequence[float], n: int) -> VerificationResult:
        """Attempt to prove that ``x``'s classification is robust to ``Δn(T)``."""
        if n < 0:
            raise ValueError(f"poisoning amount must be non-negative, got {n}")
        trainset = AbstractTrainingSet.full(dataset, n)
        predicted = self._trace_learner.predict(dataset, x)
        log10_datasets = trainset.log10_num_concretizations()

        domains = ["box", "disjuncts"] if self.domain == "either" else [self.domain]
        watch = Stopwatch().start()
        budget = TimeBudget(self.timeout_seconds) if self.timeout_seconds else TimeBudget.unlimited()

        last_result: Optional[VerificationResult] = None
        with MemoryTracker() as memory:
            for domain in domains:
                outcome = self._run_domain(domain, trainset, x, budget)
                result = self._build_result(
                    outcome,
                    domain=domain,
                    n=n,
                    predicted=predicted,
                    elapsed=watch.elapsed(),
                    peak_memory=0,
                    log10_datasets=log10_datasets,
                )
                last_result = result
                if result.is_certified:
                    break
        assert last_result is not None
        return _with_memory(last_result, memory.peak_bytes, watch.elapsed())

    def verify_batch(
        self, dataset: Dataset, X_test: np.ndarray, n: int
    ) -> List[VerificationResult]:
        """Certify every row of ``X_test`` independently."""
        X_test = np.asarray(X_test, dtype=float)
        return [self.verify(dataset, row, n) for row in X_test]

    def certified_fraction(self, dataset: Dataset, X_test: np.ndarray, n: int) -> float:
        """Fraction of the given test points proven robust at poisoning level ``n``."""
        results = self.verify_batch(dataset, X_test, n)
        if not results:
            return 0.0
        return sum(result.is_certified for result in results) / len(results)

    # ---------------------------------------------------------------- helpers
    def _run_domain(
        self,
        domain: str,
        trainset: AbstractTrainingSet,
        x: Sequence[float],
        budget: TimeBudget,
    ) -> "_DomainOutcome":
        try:
            if domain == "box":
                learner = BoxAbstractLearner(
                    max_depth=self.max_depth,
                    cprob_method=self.cprob_method,
                    predicate_pool=self.predicate_pool,
                )
                run = learner.run(trainset, x, time_budget=budget)
            else:
                learner = DisjunctiveAbstractLearner(
                    max_depth=self.max_depth,
                    cprob_method=self.cprob_method,
                    predicate_pool=self.predicate_pool,
                    max_disjuncts=self.max_disjuncts,
                )
                run = learner.run(trainset, x, time_budget=budget)
        except TimeoutExceeded as error:
            return _DomainOutcome(run=None, failure=VerificationStatus.TIMEOUT, message=str(error))
        except (DisjunctBudgetExceeded, MemoryError) as error:
            return _DomainOutcome(
                run=None,
                failure=VerificationStatus.RESOURCE_EXHAUSTED,
                message=str(error),
            )
        return _DomainOutcome(run=run, failure=None, message="")

    def _build_result(
        self,
        outcome: "_DomainOutcome",
        *,
        domain: str,
        n: int,
        predicted: int,
        elapsed: float,
        peak_memory: int,
        log10_datasets: float,
    ) -> VerificationResult:
        if outcome.run is None:
            assert outcome.failure is not None
            return VerificationResult(
                status=outcome.failure,
                poisoning_amount=n,
                predicted_class=predicted,
                certified_class=None,
                class_intervals=(),
                domain=domain,
                elapsed_seconds=elapsed,
                peak_memory_bytes=peak_memory,
                exit_count=0,
                max_disjuncts=0,
                log10_num_datasets=log10_datasets,
                message=outcome.message,
            )
        run: AbstractRunResult = outcome.run
        robust_class = run.robust_class
        status = (
            VerificationStatus.ROBUST if robust_class is not None else VerificationStatus.UNKNOWN
        )
        return VerificationResult(
            status=status,
            poisoning_amount=n,
            predicted_class=predicted,
            certified_class=robust_class,
            class_intervals=run.class_intervals,
            domain=domain,
            elapsed_seconds=elapsed,
            peak_memory_bytes=peak_memory,
            exit_count=run.exit_count,
            max_disjuncts=run.max_disjuncts,
            log10_num_datasets=log10_datasets,
            message="" if status.is_certified else "no dominating class interval",
        )


@dataclass(frozen=True)
class _DomainOutcome:
    run: Optional[AbstractRunResult]
    failure: Optional[VerificationStatus]
    message: str


def _with_memory(
    result: VerificationResult, peak_bytes: int, elapsed: float
) -> VerificationResult:
    """Return a copy of ``result`` with the final memory/time measurements."""
    return VerificationResult(
        status=result.status,
        poisoning_amount=result.poisoning_amount,
        predicted_class=result.predicted_class,
        certified_class=result.certified_class,
        class_intervals=result.class_intervals,
        domain=result.domain,
        elapsed_seconds=elapsed,
        peak_memory_bytes=peak_bytes,
        exit_count=result.exit_count,
        max_disjuncts=result.max_disjuncts,
        log10_num_datasets=result.log10_num_datasets,
        message=result.message,
    )
