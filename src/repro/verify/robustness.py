"""Legacy robustness certification driver (deprecated shim).

:class:`PoisoningVerifier` was the original end-to-end workflow object: given
a training set, a test point, and a poisoning budget ``n``, it runs
``DTrace#`` on the initial abstraction ``⟨T, n⟩`` and reports whether a
single class interval dominates (Corollary 4.12).  It is kept for backwards
compatibility but is now a thin wrapper over
:class:`repro.api.CertificationEngine`, which additionally supports
first-class threat models (fractional removal, label flips), parallel batch
certification, streaming, and aggregate reports.  New code should use the
engine directly::

    from repro.api import CertificationEngine, CertificationRequest
    engine = CertificationEngine(max_depth=2, domain="either")
    report = engine.verify(CertificationRequest(dataset, X_test, RemovalPoisoningModel(8)))

The result types (:class:`VerificationStatus`, :class:`VerificationResult`)
now live in :mod:`repro.verify.result` and are re-exported here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.poisoning.models import RemovalPoisoningModel
from repro.verify.result import (  # noqa: F401  (re-exported legacy names)
    DOMAINS,
    VerificationResult,
    VerificationStatus,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import CertificationEngine

__all__ = [
    "DOMAINS",
    "PoisoningVerifier",
    "VerificationResult",
    "VerificationStatus",
]


@dataclass
class PoisoningVerifier:
    """Deprecated: certify test points against the ``Δn`` data-poisoning model.

    This class delegates to :class:`repro.api.CertificationEngine`; it exists
    so that code written against the original API keeps working.  The
    parameters are unchanged (see the engine for their documentation).

    .. deprecated:: 0.2
        Use :class:`repro.api.CertificationEngine`, which supports arbitrary
        :class:`~repro.poisoning.models.PerturbationModel` threat models,
        ``n_jobs`` parallel batches, and aggregate reports.
    """

    max_depth: int = 2
    domain: str = "either"
    cprob_method: str = "optimal"
    timeout_seconds: Optional[float] = None
    max_disjuncts: int = 4096
    predicate_pool: Optional[Sequence] = None
    impurity: str = "gini"
    _engine: "CertificationEngine" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # Imported here (not at module top) so that `import repro.api` and
        # `import repro.verify` can each be the first import without a cycle.
        from repro.api.engine import CertificationEngine

        warnings.warn(
            "PoisoningVerifier is deprecated; use repro.api.CertificationEngine "
            "(verify(CertificationRequest(...)) supports every threat model, "
            "parallel batches, and reports)",
            DeprecationWarning,
            stacklevel=3,
        )
        self._engine = CertificationEngine(
            max_depth=self.max_depth,
            domain=self.domain,
            cprob_method=self.cprob_method,
            timeout_seconds=self.timeout_seconds,
            max_disjuncts=self.max_disjuncts,
            predicate_pool=self.predicate_pool,
            impurity=self.impurity,
        )

    @property
    def engine(self) -> CertificationEngine:
        """The engine this shim delegates to."""
        return self._engine

    # ----------------------------------------------------------------- public
    def verify(self, dataset: Dataset, x: Sequence[float], n: int) -> VerificationResult:
        """Attempt to prove that ``x``'s classification is robust to ``Δn(T)``."""
        if n < 0:
            raise ValueError(f"poisoning amount must be non-negative, got {n}")
        return self._engine.certify_point(dataset, x, RemovalPoisoningModel(n))

    def verify_batch(
        self, dataset: Dataset, X_test: np.ndarray, n: int
    ) -> List[VerificationResult]:
        """Certify every row of ``X_test`` independently."""
        if n < 0:
            raise ValueError(f"poisoning amount must be non-negative, got {n}")
        X_test = np.asarray(X_test, dtype=float)
        return list(self._engine.certify_batch(dataset, X_test, RemovalPoisoningModel(n)))

    def certified_fraction(self, dataset: Dataset, X_test: np.ndarray, n: int) -> float:
        """Fraction of the given test points proven robust at poisoning level ``n``.

        Legacy behavior: an empty test set yields ``0.0``.  The engine's
        :class:`~repro.api.report.CertificationReport.certified_fraction`
        returns ``None`` in that case, distinguishing "nothing to certify"
        from "nothing certified".
        """
        results = self.verify_batch(dataset, X_test, n)
        if not results:
            return 0.0
        return sum(result.is_certified for result in results) / len(results)
