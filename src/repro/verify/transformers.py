"""Abstract transformers for the operations of ``DTrace`` (§4.4–4.7).

Every function here soundly overapproximates the corresponding concrete
operation of :mod:`repro.core`: given any concrete training set
``T' ∈ γ(⟨T, n⟩)``, the concrete result is contained in the abstract result.
The property-based tests in ``tests/verify`` check exactly this containment
by enumerating small concretizations.

Two variants of ``cprob#`` are provided:

* ``"box"`` — the naïve interval-arithmetic lifting written out in §4.4
  (numerator interval divided by denominator interval);
* ``"optimal"`` — the optimal transformer of footnote 6, which the paper's
  implementation uses.  It is both tighter and cheaper.

``bestSplit#`` has a vectorized fast path that scores every candidate
threshold of a feature at once using the same per-feature split tables as the
concrete learner, plus a generic slow path over an explicit predicate pool.

The entry points the abstract learners call (``cprob_intervals``,
``pure_exit_vector``, ``best_split_abstract``, ``filter_abstract``) dispatch
structurally on the abstract element: an element exposing the flip protocol
(``class_probability_intervals`` / ``pure_exit_intervals`` /
``abstract_best_split`` — i.e.
:class:`repro.poisoning.label_flip.FlipAbstractTrainingSet` for the
label-flip and composite removal+flip threat models) is routed to its own
transformers, so the same Box and disjunctive learners soundly interpret
``⟨T, n⟩`` and ``⟨T, r, f⟩`` alike.  The dispatch is duck-typed on purpose:
importing the flip domain here would cycle through ``repro.poisoning``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import FeatureKind
from repro.core.predicates import (
    EqualityPredicate,
    Predicate,
)
from repro.core import split_plan
from repro.core.splitter import FeatureSplitTable
from repro.domains.interval import Interval, mul_bounds
from repro.domains.predicate_set import AbstractPredicateSet
from repro.domains.trainingset import AbstractTrainingSet
from repro.telemetry import profiling

#: Tolerance used when comparing abstract scores; widening the comparison by a
#: tiny epsilon can only *add* predicates to the returned set, which keeps the
#: transformer sound in the presence of floating-point rounding.
SCORE_TOLERANCE = 1e-9

CPROB_METHODS = ("optimal", "box")


# ---------------------------------------------------------------------------
# Scalar transformers on AbstractTrainingSet
# ---------------------------------------------------------------------------


def size_interval(trainset: AbstractTrainingSet) -> Interval:
    """``|⟨T, n⟩| = [|T| - n, |T|]`` (§4.6)."""
    return Interval(float(trainset.size - trainset.n), float(trainset.size))


def cprob_box(trainset: AbstractTrainingSet) -> Tuple[Interval, ...]:
    """The naïve ``cprob#`` of §4.4: interval numerator / interval denominator."""
    size = trainset.size
    n = trainset.n
    k = trainset.dataset.n_classes
    if n >= size:
        return tuple(Interval.unit() for _ in range(k))
    counts = trainset.class_counts()
    denominator = Interval(float(size - n), float(size))
    intervals = []
    for count in counts:
        numerator = Interval(float(max(0, count - n)), float(count))
        intervals.append(numerator.divide(denominator))
    return tuple(intervals)


def cprob_optimal(trainset: AbstractTrainingSet) -> Tuple[Interval, ...]:
    """The optimal ``cprob#`` of footnote 6.

    For each class ``i`` with count ``c_i`` and ``m = |T| - n`` remaining
    elements, the extremal probabilities are reached by dropping either as
    many class-``i`` elements as possible or as many other elements as
    possible, giving the interval ``[max(0, c_i - n)/m, min(c_i, m)/m]``.
    """
    size = trainset.size
    n = trainset.n
    k = trainset.dataset.n_classes
    m = size - n
    if m <= 0:
        return tuple(Interval.unit() for _ in range(k))
    counts = trainset.class_counts()
    intervals = []
    for count in counts:
        lower = max(0, int(count) - n) / m
        upper = min(int(count), m) / m
        intervals.append(Interval(lower, upper))
    return tuple(intervals)


def cprob_intervals(
    trainset: AbstractTrainingSet, method: str = "optimal"
) -> Tuple[Interval, ...]:
    """Dispatch between the two ``cprob#`` transformers (and the flip domain)."""
    flip_cprob = getattr(trainset, "class_probability_intervals", None)
    if flip_cprob is not None:
        return flip_cprob(method)
    if method == "optimal":
        return cprob_optimal(trainset)
    if method == "box":
        return cprob_box(trainset)
    raise ValueError(f"unknown cprob method {method!r}; expected one of {CPROB_METHODS}")


def gini_interval(
    trainset: AbstractTrainingSet, method: str = "optimal"
) -> Interval:
    """``ent#(⟨T, n⟩) = Σ_i ι_i (1 - ι_i)`` with interval arithmetic (§4.4)."""
    total = Interval.zero()
    one = Interval.point(1.0)
    for component in cprob_intervals(trainset, method):
        total = total + component * (one - component)
    return total


def score_interval(
    trainset: AbstractTrainingSet, predicate: Predicate, method: str = "optimal"
) -> Interval:
    """``score#(⟨T, n⟩, φ)`` of §4.6 for an arbitrary predicate."""
    left = trainset.split_down(predicate, True)
    right = trainset.split_down(predicate, False)
    return size_interval(left) * gini_interval(left, method) + size_interval(
        right
    ) * gini_interval(right, method)


def pure_restriction(trainset: AbstractTrainingSet) -> Optional[AbstractTrainingSet]:
    """The restriction used by the ``ent(T) = 0`` branch (§4.7), or ``None``."""
    return trainset.restrict_pure_any()


def pure_exit_vector(
    trainset: AbstractTrainingSet, method: str = "optimal"
) -> Optional[Tuple[Interval, ...]]:
    """Class-probability intervals of the ``ent(T) = 0`` exit, or ``None``.

    For removal elements this is ``cprob#`` of :func:`pure_restriction`.  Flip
    elements have no state-shaped pure restriction (a pure concretization may
    have *flipped* rows into the majority class), so they contribute the
    joined point vectors of every feasible pure class directly — which is
    exactly the classification of those exits.
    """
    with profiling.phase("pure_exit"):
        pure_exits = getattr(trainset, "pure_exit_intervals", None)
        if pure_exits is not None:
            return pure_exits()
        restricted = trainset.restrict_pure_any()
        if restricted is None:
            return None
        return cprob_intervals(restricted, method)


def entropy_is_definitely_zero(
    trainset: AbstractTrainingSet, method: str = "optimal"
) -> bool:
    """Whether every concretization has zero impurity (else-branch infeasible)."""
    return gini_interval(trainset, method).upper_at_most(0.0)


# ---------------------------------------------------------------------------
# filter#
# ---------------------------------------------------------------------------


def filter_abstract(
    trainset: AbstractTrainingSet,
    predicates: AbstractPredicateSet,
    x: Sequence[float],
) -> Optional[AbstractTrainingSet]:
    """``filter#(⟨T, n⟩, Ψ, x)`` of §4.5 (and its symbolic variant of App. B).

    Returns ``None`` (bottom) when no predicate applies, which can only happen
    when ``Ψ`` contains no concrete choices.
    """
    with profiling.phase("filter"):
        satisfied, falsified = predicates.partition_for_point(x)
        pieces: List[AbstractTrainingSet] = []
        for predicate in satisfied:
            pieces.append(trainset.split_down(predicate, True))
        for predicate in falsified:
            pieces.append(trainset.split_down(predicate, False))
        # An abstractly empty side means no concrete run can take that branch
        # with that predicate (a non-trivial split needs both sides non-empty),
        # so such pieces are identity elements for the join (Example 4.8).
        pieces = [piece for piece in pieces if piece.size > 0]
        if not pieces:
            return None
        result = pieces[0]
        for piece in pieces[1:]:
            result = result.join(piece)
        return result


# ---------------------------------------------------------------------------
# bestSplit#
# ---------------------------------------------------------------------------


@dataclass
class _ScoredCandidates:
    """Scored candidate predicates of one feature (vectorized bounds).

    Predicate objects are materialized lazily: the common selection path only
    instantiates the (typically few) candidates that survive the ``lub``
    comparison, while the score arrays cover every candidate position.  The
    generic pool/categorical paths pre-materialize and set ``predicates``.
    """

    score_lower: np.ndarray
    score_upper: np.ndarray
    universal: np.ndarray  # boolean mask: non-trivial for every concretization
    predicates: Optional[List[Predicate]] = None  # eager (pool path) predicates
    feature: int = -1
    kind: Optional[FeatureKind] = None
    table: Optional[FeatureSplitTable] = None

    def materialize(self, positions: Sequence[int]) -> List[Predicate]:
        """Predicate objects at ``positions``, preserving candidate order."""
        if self.predicates is not None:
            return [self.predicates[int(i)] for i in positions]
        table = self.table
        assert table is not None
        if self.kind is FeatureKind.REAL:
            return [
                split_plan.symbolic_predicate(
                    self.feature,
                    float(table.lower_values[int(i)]),
                    float(table.upper_values[int(i)]),
                )
                for i in positions
            ]
        return [
            split_plan.threshold_predicate(self.feature, float(table.thresholds[int(i)]))
            for i in positions
        ]

    def materialize_all(self) -> List[Predicate]:
        return self.materialize(range(int(self.score_lower.shape[0])))


def _side_probability_bounds(
    sizes: np.ndarray, class_counts: np.ndarray, budget: int, method: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``cprob#`` bounds for one side of every candidate split.

    Parameters are arrays over candidates: ``sizes`` has shape ``(c,)`` and
    ``class_counts`` shape ``(c, k)``.  Returns per-candidate, per-class lower
    and upper probability bounds of shape ``(c, k)``.
    """
    sizes = sizes.astype(np.float64)
    counts = class_counts.astype(np.float64)
    budgets = np.minimum(float(budget), sizes)
    remaining = sizes - budgets  # m = |T| - n for each candidate side

    lower = np.zeros_like(counts)
    upper = np.ones_like(counts)
    positive = remaining > 0
    if method == "optimal":
        safe_remaining = np.where(positive, remaining, 1.0)[:, None]
        lower_pos = np.maximum(0.0, counts - budgets[:, None]) / safe_remaining
        upper_pos = np.minimum(counts, remaining[:, None]) / safe_remaining
    elif method == "box":
        # Numerator [max(0, c - n), c], denominator [m, |T|] — interval division
        # with a positive divisor.
        numerator_lo = np.maximum(0.0, counts - budgets[:, None])
        numerator_hi = counts
        denominator_lo = np.where(positive, remaining, 1.0)[:, None]
        denominator_hi = np.maximum(sizes, 1.0)[:, None]
        lower_pos = numerator_lo / denominator_hi
        upper_pos = numerator_hi / denominator_lo
    else:
        raise ValueError(f"unknown cprob method {method!r}")
    mask = positive[:, None]
    lower = np.where(mask, lower_pos, lower)
    upper = np.where(mask, upper_pos, upper)
    return lower, upper


def _side_score_bounds(
    sizes: np.ndarray, class_counts: np.ndarray, budget: int, method: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized bounds of ``|side| · ent#(side)`` for every candidate."""
    prob_lower, prob_upper = _side_probability_bounds(
        sizes, class_counts, budget, method
    )
    term_lower, term_upper = mul_bounds(
        prob_lower, prob_upper, 1.0 - prob_upper, 1.0 - prob_lower
    )
    gini_lower = term_lower.sum(axis=1)
    gini_upper = term_upper.sum(axis=1)
    sizes = sizes.astype(np.float64)
    budgets = np.minimum(float(budget), sizes)
    size_lower = sizes - budgets
    size_upper = sizes
    return mul_bounds(size_lower, size_upper, gini_lower, gini_upper)


def _side_score_bounds_reference(
    sizes: np.ndarray, class_counts: np.ndarray, budget: int, method: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar per-candidate mirror of :func:`_side_score_bounds`.

    Retained as the property-test oracle for the vectorized kernel: one
    candidate at a time, in plain :class:`Interval` arithmetic.
    """
    lower = np.empty(int(sizes.shape[0]))
    upper = np.empty(int(sizes.shape[0]))
    for i in range(int(sizes.shape[0])):
        size = int(sizes[i])
        n = min(budget, size)
        m = size - n
        if m <= 0:
            probs = [Interval.unit() for _ in range(class_counts.shape[1])]
        elif method == "optimal":
            probs = [
                Interval(max(0, int(c) - n) / m, min(int(c), m) / m)
                for c in class_counts[i]
            ]
        else:
            denominator = Interval(float(m), float(size))
            probs = [
                Interval(float(max(0, int(c) - n)), float(int(c))).divide(denominator)
                for c in class_counts[i]
            ]
        gini = Interval.zero()
        one = Interval.point(1.0)
        for p in probs:
            gini = gini + p * (one - p)
        score = Interval(float(m), float(size)) * gini
        lower[i] = score.lo
        upper[i] = score.hi
    return lower, upper


def _scored_threshold_candidates(
    trainset: AbstractTrainingSet,
    feature: int,
    kind: FeatureKind,
    method: str,
    table: FeatureSplitTable,
) -> Optional[_ScoredCandidates]:
    """Score every threshold candidate of one (real or boolean) feature."""
    if table.n_candidates == 0:
        return None
    budget = trainset.n

    left_lower, left_upper = _side_score_bounds(
        table.left_sizes, table.left_class_counts, budget, method
    )
    right_lower, right_upper = _side_score_bounds(
        table.right_sizes, table.right_class_counts, budget, method
    )
    score_lower = left_lower + right_lower
    score_upper = left_upper + right_upper
    universal = (table.left_sizes > budget) & (table.right_sizes > budget)

    return _ScoredCandidates(
        score_lower=score_lower,
        score_upper=score_upper,
        universal=universal,
        feature=feature,
        kind=kind,
        table=table,
    )


def _scored_pool_candidates(
    trainset: AbstractTrainingSet, pool: Sequence[Predicate], method: str
) -> Optional[_ScoredCandidates]:
    """Score an explicit predicate pool (slow generic path)."""
    predicates: List[Predicate] = []
    lower: List[float] = []
    upper: List[float] = []
    universal: List[bool] = []
    for predicate in pool:
        left = trainset.split_down(predicate, True)
        right = trainset.split_down(predicate, False)
        if left.size == 0 or right.size == 0:
            # Trivial for every concretization: not in Φ∃.
            continue
        score = size_interval(left) * gini_interval(left, method) + size_interval(
            right
        ) * gini_interval(right, method)
        predicates.append(predicate)
        lower.append(score.lo)
        upper.append(score.hi)
        universal.append(not left.can_be_empty() and not right.can_be_empty())
    if not predicates:
        return None
    return _ScoredCandidates(
        predicates=predicates,
        score_lower=np.asarray(lower),
        score_upper=np.asarray(upper),
        universal=np.asarray(universal, dtype=bool),
    )


def _scored_categorical_candidates(
    trainset: AbstractTrainingSet, feature: int, method: str
) -> Optional[_ScoredCandidates]:
    """Score equality predicates for one categorical feature."""
    values = np.unique(trainset.features[:, feature])
    pool = [EqualityPredicate(feature, float(v)) for v in values]
    return _scored_pool_candidates(trainset, pool, method)


def best_split_abstract(
    trainset: AbstractTrainingSet,
    *,
    method: str = "optimal",
    predicate_pool: Optional[Sequence[Predicate]] = None,
) -> AbstractPredicateSet:
    """``bestSplit#(⟨T, n⟩)`` of §4.6 (with the real-valued lifting of App. B).

    Returns the abstract predicate set containing every predicate whose score
    interval overlaps the minimal achievable score, plus ``⋄`` when some
    concretization might admit no non-trivial split at all.
    """
    with profiling.phase("best_split"):
        return _best_split_abstract(
            trainset, method=method, predicate_pool=predicate_pool
        )


def _best_split_abstract(
    trainset: AbstractTrainingSet,
    *,
    method: str,
    predicate_pool: Optional[Sequence[Predicate]],
) -> AbstractPredicateSet:
    flip_split = getattr(trainset, "abstract_best_split", None)
    if flip_split is not None:
        return flip_split(method=method, predicate_pool=predicate_pool)
    if trainset.size == 0:
        return AbstractPredicateSet.of((), includes_null=True)

    plan = None
    cache_key = None
    if predicate_pool is None:
        # bestSplit# is a pure function of (node rows, budget, method); the
        # learners re-pose the same query for same-rows disjuncts and across
        # ladder rungs, so memoize the immutable result on the plan.
        plan = split_plan.plan_for(trainset.dataset)
        cache_key = (trainset.indices.tobytes(), trainset.n, method)
        cached = plan.cached_best_split(cache_key)
        if cached is not None:
            return cached

    groups: List[_ScoredCandidates] = []
    if predicate_pool is not None:
        scored = _scored_pool_candidates(trainset, predicate_pool, method)
        if scored is not None:
            groups.append(scored)
    else:
        tables = plan.node_tables(trainset.indices)
        stacked = tables.stacked
        stacked_scores = None
        if stacked is not None:
            # Bound every threshold candidate of every feature in one batch
            # kernel call; the per-feature groups below are O(1) slices of it.
            budget = trainset.n
            left_lower, left_upper = _side_score_bounds(
                stacked.left_sizes, stacked.left_class_counts, budget, method
            )
            right_lower, right_upper = _side_score_bounds(
                stacked.right_sizes, stacked.right_class_counts, budget, method
            )
            stacked_scores = (
                left_lower + right_lower,
                left_upper + right_upper,
                (stacked.left_sizes > budget) & (stacked.right_sizes > budget),
            )
        for feature, kind in enumerate(trainset.dataset.feature_kinds):
            if kind is FeatureKind.CATEGORICAL:
                scored = _scored_categorical_candidates(trainset, feature, method)
            else:
                part = stacked.feature_slice(feature) if stacked is not None else None
                if (
                    stacked_scores is None
                    or part is None
                    or part.stop == part.start
                ):
                    continue
                scored = _ScoredCandidates(
                    score_lower=stacked_scores[0][part],
                    score_upper=stacked_scores[1][part],
                    universal=stacked_scores[2][part],
                    feature=feature,
                    kind=kind,
                    table=tables[feature],
                )
            if scored is not None:
                groups.append(scored)

    if not groups:
        # Φ∃ is empty: every predicate is trivial on every concretization.
        result = AbstractPredicateSet.of((), includes_null=True)
    elif not any(bool(group.universal.any()) for group in groups):
        # Φ∀ = ∅: return all existentially non-trivial predicates plus ⋄.
        predicates = [p for group in groups for p in group.materialize_all()]
        result = AbstractPredicateSet.of(predicates, includes_null=True)
    else:
        lub = min(
            float(group.score_upper[group.universal].min())
            for group in groups
            if group.universal.any()
        )
        selected: List[Predicate] = []
        for group in groups:
            mask = group.score_lower <= lub + SCORE_TOLERANCE
            selected.extend(group.materialize(np.nonzero(mask)[0]))
        result = AbstractPredicateSet.of(selected, includes_null=False)
    if plan is not None and cache_key is not None:
        plan.store_best_split(cache_key, result)
    return result
