"""Domain-ladder traces: warm-starting ``filter#`` across budget probes.

A budget search (the §6.1 doubling/binary search, or one staircase step of a
Pareto frontier) re-certifies the *same* test point against the *same*
dataset at a sequence of nearby budgets.  The abstract learner's per-step row
sets are budget-independent — ``split_down`` keeps indices that depend only
on the predicate path, and the filter join unions them — so when two probes
make the same abstract decisions (same node row set, same ``bestSplit#``
outcome), their filtered states differ **only in the budget component**, and
that component is pure integer arithmetic over sizes recorded the first time.

This module captures exactly that: :func:`filter_abstract_traced` performs a
normal ``filter#`` while recording one :class:`TraceStep` — the entry row
set, the predicate set, the resulting row set, and a :class:`FilterReplay`
holding the piece/join sizes.  A later probe whose state matches the step
(:meth:`TraceStep.matches`) skips the split/join array work entirely and
rebuilds the filtered element via :meth:`TraceStep.apply`, replaying the
budget formulas of ``split_down`` / ``join`` on the stored sizes.  The
formulas below are transcriptions of (and must stay in lockstep with):

* ``AbstractTrainingSet._split_down_symbolic_counts`` / ``split_down`` /
  ``join`` for removal elements ``⟨T, n⟩``;
* ``FlipAbstractTrainingSet._split_down_symbolic_counts`` / ``split_down`` /
  ``join`` for flip/composite elements ``⟨T, r, f⟩``

so a warm-started probe is behavior-identical to a cold one by construction
(asserted by the staircase property tests in
``tests/verify/test_vectorized_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.predicates import Predicate, SymbolicThresholdPredicate
from repro.telemetry import profiling


@dataclass(frozen=True)
class ReplayPiece:
    """One ``split_down`` piece of a filter: its sizes, not its rows.

    ``kind`` is ``"s"`` for a symbolic split (``size`` is the loose count
    ``l``, ``tight`` the tight count ``t``) and ``"c"`` for a concrete one
    (``size`` is the surviving row count; ``tight`` is unused).
    """

    kind: str
    size: int
    tight: int = 0

    def removal_budget(self, n: int) -> int:
        if self.kind == "c":
            return n if n <= self.size else self.size
        t, l = self.tight, self.size
        return max(min(n, l), (l - t) + min(n, t))

    def flip_budgets(self, removals: int, flips: int) -> Tuple[int, int]:
        if self.kind == "c":
            s = self.size
            return (min(removals, s), min(flips, s))
        t, l = self.tight, self.size
        r = max(min(removals, l), (l - t) + min(removals, t))
        return (min(r, l), min(flips, l))


@dataclass(frozen=True)
class JoinStat:
    """Sizes of one fold step of the filter join (Definition 4.1).

    ``common`` is recoverable as ``prev + piece - union``, so only the three
    sizes are stored.
    """

    prev_size: int
    piece_size: int
    union_size: int


@dataclass(frozen=True)
class FilterReplay:
    """Budget replay data of one ``filter#`` application.

    ``pieces`` are the non-empty split pieces in fold order; ``joins`` has one
    entry per fold step (``len(pieces) - 1``).  Replaying runs the exact
    budget arithmetic the real transformers ran, on the stored sizes.
    """

    pieces: Tuple[ReplayPiece, ...]
    joins: Tuple[JoinStat, ...]

    def replay_removal(self, n: int) -> int:
        """The filtered element's budget for an incoming budget ``n``."""
        pieces = self.pieces
        budget = pieces[0].removal_budget(n)
        size = pieces[0].size
        for piece, stat in zip(pieces[1:], self.joins):
            other = piece.removal_budget(n)
            common = stat.prev_size + stat.piece_size - stat.union_size
            raw = max(
                (stat.prev_size - common) + other,
                (stat.piece_size - common) + budget,
            )
            budget = raw if raw <= stat.union_size else stat.union_size
            size = stat.union_size
        return budget if budget <= size else size

    def replay_flip(self, removals: int, flips: int) -> Tuple[int, int]:
        """The filtered element's ``(r, f)`` for incoming budgets."""
        pieces = self.pieces
        r, f = pieces[0].flip_budgets(removals, flips)
        size = pieces[0].size
        for piece, stat in zip(pieces[1:], self.joins):
            pr, pf = piece.flip_budgets(removals, flips)
            common = stat.prev_size + stat.piece_size - stat.union_size
            raw = max(
                (stat.prev_size - common) + pr,
                (stat.piece_size - common) + r,
            )
            r = min(stat.union_size, raw)
            f = min(stat.union_size, max(f, pf))
            size = stat.union_size
        return (min(r, size), min(f, size))


@dataclass(frozen=True)
class TraceStep:
    """One learner iteration's filter, keyed by its abstract decisions.

    A step from a prior probe warm-starts the current one iff the entry row
    set and the chosen predicate set are identical (:meth:`matches`) — then
    the filtered row set is ``next_indices`` verbatim and only the budget is
    replayed.  ``next_indices is None`` records a bottom filter result.
    """

    indices_key: bytes
    predicates: Tuple[Predicate, ...]
    next_indices: Optional[np.ndarray]
    replay: Optional[FilterReplay]

    def matches(self, state, predicates: Tuple[Predicate, ...]) -> bool:
        return (
            state.indices.tobytes() == self.indices_key
            and self.predicates == predicates
        )

    def apply(self, state):
        """The filtered element at ``state``'s budget(s); ``None`` = bottom."""
        if self.next_indices is None:
            return None
        assert self.replay is not None
        flips = getattr(state, "flips", None)
        if flips is not None:
            r, f = self.replay.replay_flip(state.removals, flips)
            return type(state)._trusted(state.dataset, self.next_indices, r, f)
        n = self.replay.replay_removal(state.n)
        return type(state)._trusted(state.dataset, self.next_indices, n)


@dataclass(frozen=True)
class LadderTrace:
    """The per-(point, family) filter trace of one Box-domain learner run."""

    steps: Tuple[TraceStep, ...]

    def step_at(self, depth: int) -> Optional[TraceStep]:
        if depth < len(self.steps):
            return self.steps[depth]
        return None


def filter_abstract_traced(trainset, predicates, x: Sequence[float]):
    """``filter#`` exactly as :func:`repro.verify.transformers.filter_abstract`,
    additionally recording the :class:`TraceStep` that lets a later probe
    replay this application at a different budget.

    Returns ``(filtered_state_or_None, TraceStep)``.
    """
    with profiling.phase("filter"):
        satisfied, falsified = predicates.partition_for_point(x)
        pieces: List = []
        replay_pieces: List[ReplayPiece] = []

        def split(predicate: Predicate, branch: bool) -> None:
            if isinstance(predicate, SymbolicThresholdPredicate):
                piece, t, l = trainset._split_down_symbolic_counts(predicate, branch)
                if piece.size > 0:
                    pieces.append(piece)
                    replay_pieces.append(ReplayPiece("s", l, t))
            else:
                piece = trainset.split_down(predicate, branch)
                if piece.size > 0:
                    pieces.append(piece)
                    replay_pieces.append(ReplayPiece("c", piece.size))

        for predicate in satisfied:
            split(predicate, True)
        for predicate in falsified:
            split(predicate, False)

        indices_key = trainset.indices.tobytes()
        if not pieces:
            return None, TraceStep(indices_key, predicates.predicates, None, None)
        result = pieces[0]
        joins: List[JoinStat] = []
        for piece in pieces[1:]:
            prev_size = result.size
            result = result.join(piece)
            joins.append(JoinStat(prev_size, piece.size, result.size))
        step = TraceStep(
            indices_key,
            predicates.predicates,
            result.indices,
            FilterReplay(tuple(replay_pieces), tuple(joins)),
        )
        return result, step
