"""The unified certification engine: one entry point for every threat model.

:class:`CertificationEngine` is the *how* of certification.  It is configured
once (tree depth, abstract domain, resource budgets) and then solves any
number of :class:`~repro.api.request.CertificationRequest` objects:

* the abstract learners (`BoxAbstractLearner`, `DisjunctiveAbstractLearner`)
  and the concrete trace learner are constructed **once** per engine and
  reused across every certified point — the legacy ``PoisoningVerifier``
  rebuilt both on every ``verify()`` call;
* the initial abstraction (``⟨T, n⟩`` for removal models, ``⟨T, r, f⟩`` for
  the label-flip and composite removal+flip models) and ``log10 |Δ(T)|`` are
  computed once per (dataset, model) pair and shared by every point of a
  batch;
* removal-family models (:class:`RemovalPoisoningModel`,
  :class:`FractionalRemovalModel`), :class:`LabelFlipModel`, and
  :class:`CompositePoisoningModel` dispatch through the same
  ``verify(request)`` call into the appropriate abstract-training-set
  initializer — the generic ``Δ(T)`` of the paper — and the flip-family
  models run the same Box/disjunctive domain ladder as removal
  (``domain="either"`` falls back to ``flip-disjuncts`` when ``flip-box``
  is inconclusive);
* ``verify(request, n_jobs=N)`` certifies batches on a process pool, and
  :meth:`certify_stream` yields per-point results incrementally in input
  order for streaming consumers (CLI progress, dashboards);
* an attached :class:`~repro.runtime.CertificationRuntime` (the ``runtime=``
  parameter) adds the scaling layer: pool workers attach the training set
  zero-copy from shared memory instead of unpickling a private copy, repeat
  queries answer from the persistent verdict cache (with budget-monotone
  derivation), and long batches checkpoint to a resumable run journal.
  Engines without an explicit runtime still get the shared-memory dataset
  plane by default whenever ``n_jobs > 1``.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import uuid
import warnings
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.report import CertificationReport
from repro.api.scheduler import BatchSubmission, CertificationScheduler
from repro.api.request import CertificationRequest, ModelLike, as_perturbation_model
from repro.core.dataset import Dataset
from repro.core.trace_learner import TraceLearner
from repro.domains.trainingset import AbstractTrainingSet
from repro.poisoning.label_flip import FlipAbstractTrainingSet
from repro.poisoning.models import (
    CompositePoisoningModel,
    LabelFlipModel,
    PerturbationModel,
    resolve_model_classes,
)
from repro.runtime.fingerprint import fingerprint_dataset, point_digest
from repro.runtime.shm import SharedDatasetHandle
from repro.telemetry import events, metrics, tracing
from repro.telemetry import profiling
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch, TimeBudget, TimeoutExceeded
from repro.utils.validation import ValidationError
from repro.verify.abstract_learner import AbstractRunResult, BoxAbstractLearner
from repro.verify.disjunctive_learner import (
    DisjunctBudgetExceeded,
    DisjunctiveAbstractLearner,
)
from repro.verify.result import DOMAINS, VerificationResult, VerificationStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import CertificationRuntime

#: Domain label reported for flip-family certificates proven on the Box-style
#: abstraction of ``⟨T, r, f⟩``.
FLIP_DOMAIN = "flip-box"

#: Domain label reported for flip-family certificates proven on the
#: disjunctive domain (one disjunct per surviving control-flow path, exactly
#: as for removal).
FLIP_DISJUNCTS_DOMAIN = "flip-disjuncts"

#: The domain ladder attempted per engine ``domain`` setting, for each model
#: family.  ``"either"`` tries Box first and escalates to the disjunctive
#: domain only when Box is inconclusive — for flips exactly as for removal.
_DOMAIN_LADDERS = {
    "removal": {
        "box": ("box",),
        "disjuncts": ("disjuncts",),
        "either": ("box", "disjuncts"),
    },
    "flip": {
        "box": (FLIP_DOMAIN,),
        "disjuncts": (FLIP_DISJUNCTS_DOMAIN,),
        "either": (FLIP_DOMAIN, FLIP_DISJUNCTS_DOMAIN),
    },
}

#: Learner-side certification latency, by threat-model family, final ladder
#: domain, and outcome.  Only observed on the cold path (cache hits and
#: leases never reach :meth:`CertificationEngine._certify_one`).
_CERTIFY_SECONDS = metrics.histogram(
    "certify_seconds",
    "Per-point certification latency through the abstract learners.",
    labelnames=("family", "domain", "outcome"),
)
#: Actual learner runs in this process (warm serving keeps this flat).
_LEARNER_INVOCATIONS = metrics.counter(
    "learner_invocations_total",
    "Points certified by running the abstract learners (not cache/lease).",
)
#: Pool dispatch latency: task submission in the parent to task start in the
#: worker (queue wait + argument pickling).  The first explanation to check
#: when pooled throughput trails serial (``BENCH_parallel.json``).
_DISPATCH_OVERHEAD = metrics.histogram(
    "dispatch_overhead_seconds",
    "Pool task latency from parent submit to worker start.",
)
#: Per-worker certification wall time (the busy half of utilization).
_WORKER_TASK_SECONDS = metrics.histogram(
    "worker_task_seconds",
    "Per-task certification wall time inside one pool worker.",
    labelnames=("worker",),
)
#: Worker-side pool start-up: dataset attach/unpickle plus plan rebuild.
#: Observed in the worker and shipped to the parent via the merge plane.
_POOL_ATTACH_SECONDS = metrics.histogram(
    "pool_attach_seconds",
    "Pool initializer time: dataset attach plus request-plan rebuild.",
)
#: Bytes of pickled per-worker payload (a shm handle or the full dataset).
_POOL_PAYLOAD_BYTES = metrics.gauge(
    "pool_payload_bytes",
    "Pickled size of the per-worker pool payload.",
    labelnames=("kind",),
)
#: Busy fraction of each worker over the last pooled batch's wall time.
_WORKER_UTILIZATION = metrics.gauge(
    "worker_utilization",
    "Fraction of the last pooled batch each worker spent certifying.",
    labelnames=("worker",),
)
#: Parent-side cost of folding worker metric deltas into the registry
#: (``bench_telemetry.py`` keeps this under 5% of pooled batch wall time).
_WORKER_MERGE_SECONDS = metrics.histogram(
    "worker_merge_seconds",
    "Parent-side merge cost per worker metric delta.",
)
#: Filter steps of Box-domain runs, by how they were served: ``reused`` steps
#: replayed a warm trace from a prior budget probe of the same (point,
#: family) by pure budget arithmetic; ``replayed`` steps ran the real
#: split/join kernels (first probe, or a step whose abstract decisions
#: changed with the budget).
_TRACE_WARMSTART = metrics.counter(
    "trace_warmstart_total",
    "Box-learner filter steps served from a warm ladder trace (result=reused) "
    "versus computed by the split/join kernels (result=replayed).",
    labelnames=("result",),
)
_TRACE_REUSED = _TRACE_WARMSTART.labels(result="reused")
_TRACE_REPLAYED = _TRACE_WARMSTART.labels(result="replayed")

#: Engine-level bound on retained ladder traces (cleared wholesale on
#: overflow, like the split-plan caches).
_TRACE_CACHE_SIZE = 512


@dataclass(frozen=True)
class _RequestPlan:
    """Shared per-(dataset, model) state reused across every point of a batch.

    ``amount`` is the model's nominal budget (what results report, matching
    the legacy driver even when it exceeds the training size); ``budget`` is
    the amount resolved against the training set, which seeds the initial
    abstraction.
    """

    amount: int
    budget: int
    log10_datasets: float
    flips: int = 0
    removal_trainset: Optional[AbstractTrainingSet] = None
    flip_trainset: Optional[FlipAbstractTrainingSet] = None


@dataclass
class CertificationEngine:
    """Certify test points against first-class poisoning threat models.

    Parameters
    ----------
    max_depth:
        Decision-tree depth ``d`` of the learner being verified (1–4 in the
        paper's evaluation).
    domain:
        ``"box"``, ``"disjuncts"``, or ``"either"`` (try Box first, fall back
        to the more precise but more expensive disjunctive domain).  Applies
        to every model family; flip-family results report the domain that
        proved them as ``"flip-box"`` / ``"flip-disjuncts"``.
    cprob_method:
        ``"optimal"`` (default, footnote 6) or ``"box"``.
    timeout_seconds:
        Per-point wall-clock budget; ``None`` disables the timeout.
    max_disjuncts:
        Resource limit of the disjunctive learner.
    predicate_pool:
        Optional fixed predicate set Φ shared by the concrete and abstract
        learners.  Not supported for the label-flip/composite families (the
        flip ``bestSplit#`` derives candidates from the data).
    runtime:
        Optional :class:`~repro.runtime.CertificationRuntime` providing the
        shared-memory dataset plane, the persistent verdict cache, and
        resumable run journals.  Without one, parallel batches
        (``n_jobs > 1``) still use the process-wide shared-memory default.
    """

    max_depth: int = 2
    domain: str = "either"
    cprob_method: str = "optimal"
    timeout_seconds: Optional[float] = None
    max_disjuncts: int = 4096
    predicate_pool: Optional[Sequence] = None
    impurity: str = "gini"
    runtime: Optional["CertificationRuntime"] = None
    _trace_learner: TraceLearner = field(init=False, repr=False)
    _box_learner: BoxAbstractLearner = field(init=False, repr=False)
    _disjunctive_learner: DisjunctiveAbstractLearner = field(init=False, repr=False)
    _plan_cache: "OrderedDict[Tuple[str, PerturbationModel], _RequestPlan]" = field(
        init=False, repr=False, default_factory=OrderedDict
    )
    _plan_lock: threading.Lock = field(
        init=False, repr=False, default_factory=threading.Lock
    )
    _scheduler: Optional[CertificationScheduler] = field(
        init=False, repr=False, default=None
    )
    # Warm-start ladder traces, keyed (dataset fingerprint, point digest,
    # family).  Plain dict under the GIL: values are immutable LadderTrace
    # objects and a lost race merely recomputes one filter step.
    _trace_cache: dict = field(init=False, repr=False, default_factory=dict)
    # Per-thread (steps, reused) accumulators consumed by the runtime/search
    # layers for `trace_reuse_fraction` reporting.
    _trace_local: threading.local = field(
        init=False, repr=False, default_factory=threading.local
    )

    def __post_init__(self) -> None:
        if self.domain not in DOMAINS:
            raise ValueError(f"domain must be one of {DOMAINS}, got {self.domain!r}")
        self._trace_learner = TraceLearner(
            max_depth=self.max_depth,
            impurity=self.impurity,
            predicate_pool=self.predicate_pool,
        )
        self._box_learner = BoxAbstractLearner(
            max_depth=self.max_depth,
            cprob_method=self.cprob_method,
            predicate_pool=self.predicate_pool,
        )
        self._disjunctive_learner = DisjunctiveAbstractLearner(
            max_depth=self.max_depth,
            cprob_method=self.cprob_method,
            predicate_pool=self.predicate_pool,
            max_disjuncts=self.max_disjuncts,
        )

    def __getstate__(self) -> dict:
        # Cached plans hold full abstract training sets — shipping them to
        # pool workers would defeat the shared-memory dataset plane, so they
        # are rebuilt worker-side.  The runtime (sqlite handles, shared-memory
        # registries) and the scheduler (locks, in-flight futures, thread
        # pools) are parent-only state and never travel either.
        state = dict(self.__dict__)
        state["_plan_cache"] = {}
        state["runtime"] = None
        state["_scheduler"] = None
        state["_plan_lock"] = None
        state["_trace_cache"] = {}
        state["_trace_local"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._plan_cache = OrderedDict()
        self._plan_lock = threading.Lock()
        self._trace_cache = {}
        self._trace_local = threading.local()

    @property
    def scheduler(self) -> CertificationScheduler:
        """The in-flight coalescing scheduler guarding this engine's batches."""
        # Double-checked fast path: reading the reference is atomic, and a
        # stale None only sends us into the locked slow path below.
        scheduler = self._scheduler  # repro: ignore[lock-discipline]
        if scheduler is None:
            with self._plan_lock:
                if self._scheduler is None:
                    self._scheduler = CertificationScheduler(self)
                scheduler = self._scheduler
        return scheduler

    # ----------------------------------------------------------------- public
    def verify(
        self, request: CertificationRequest, *, n_jobs: int = 1
    ) -> CertificationReport:
        """Solve one certification request and aggregate into a report.

        This is the single entry point all threat models flow through; with
        ``n_jobs > 1`` the points of the request are certified on a process
        pool (results stay in input order either way).
        """
        watch = Stopwatch().start()
        with tracing.span("engine.verify") as trace_root:
            results = list(self.certify_stream(request, n_jobs=n_jobs))
        runtime_stats = None
        if self.runtime is not None and self.runtime.last_batch_stats is not None:
            runtime_stats = self.runtime.last_batch_stats.snapshot()
        if trace_root is not None:
            runtime_stats = dict(runtime_stats or {})
            runtime_stats["trace"] = trace_root.to_dict()
        return CertificationReport(
            results=results,
            model_description=request.model.describe(),
            dataset_name=request.dataset.name,
            total_seconds=watch.elapsed(),
            runtime_stats=runtime_stats,
        )

    def certify_batch(
        self,
        dataset: Dataset,
        points: np.ndarray,
        model: ModelLike,
        *,
        n_jobs: int = 1,
    ) -> CertificationReport:
        """Certify every row of ``points`` against ``model`` (order preserved)."""
        return self.verify(
            CertificationRequest(dataset, points, as_perturbation_model(model)),
            n_jobs=n_jobs,
        )

    def certify_stream(
        self, request: CertificationRequest, *, n_jobs: int = 1
    ) -> Iterator[VerificationResult]:
        """Yield one :class:`VerificationResult` per request point, in order.

        The stream is incremental: consumers see each point's verdict as soon
        as it (and every earlier point) is done, which keeps progress
        reporting responsive even for long batches.

        Streams are thin clients of the :attr:`scheduler`: a point another
        batch of this engine is already computing is leased from it instead of
        recomputed, so concurrent overlapping batches — e.g. several service
        clients asking the same question — cost one learner invocation per
        distinct point.  With a :class:`~repro.runtime.CertificationRuntime`
        attached, the non-leased remainder flows through its cache/journal
        first and only the misses reach the learners; without one, parallel
        batches still get the process-wide shared-memory dataset plane.
        """
        dataset = request.dataset
        # Requests resolve n_classes at construction; re-resolving here keeps
        # hand-built requests (or shims bypassing __post_init__) honest.
        model = resolve_model_classes(request.model, dataset.n_classes)
        rows = [np.asarray(row, dtype=float) for row in request.points]
        yield from self.scheduler.stream_rows(dataset, model, rows, n_jobs=n_jobs)

    def submit(
        self, request: CertificationRequest, *, n_jobs: int = 1
    ) -> BatchSubmission:
        """Certify a request asynchronously; returns per-point futures now.

        The submission runs on a scheduler background thread and coalesces
        with every other in-flight batch of this engine: N concurrent
        submissions of the same ``(dataset, point, model)`` cost one learner
        invocation.  ``BatchSubmission.gather()`` blocks for the results (in
        request order); ``BatchSubmission.report()`` aggregates them into the
        same report :meth:`verify` would have produced.
        """
        return self.scheduler.submit(request, n_jobs=n_jobs)

    def _stream_rows(
        self,
        dataset: Dataset,
        model: PerturbationModel,
        rows: Sequence[np.ndarray],
        *,
        n_jobs: int = 1,
    ) -> Iterator[VerificationResult]:
        """Certify ``rows`` through the cache/journal/pool machinery, in order.

        This is the batch primitive under the scheduler (which handles
        cross-batch coalescing before delegating here); ``model`` must already
        be class-count resolved.
        """
        workers = min(int(n_jobs), len(rows))
        runtime = self.runtime
        if runtime is not None:
            yield from runtime.stream(self, dataset, model, rows, n_jobs=workers)
            return
        shared_handle = None
        if workers > 1:
            # Deferred import: repro.runtime pulls in this module's siblings.
            from repro.runtime.runtime import default_runtime

            shared_handle = default_runtime().publish(dataset)
        yield from self._compute_stream(
            dataset, rows, model, n_jobs=workers, shared_handle=shared_handle
        )

    def _compute_stream(
        self,
        dataset: Dataset,
        rows: Sequence[np.ndarray],
        model: PerturbationModel,
        *,
        n_jobs: int = 1,
        shared_handle: Optional[SharedDatasetHandle] = None,
    ) -> Iterator[VerificationResult]:
        """Run the learners over ``rows`` in order (no cache consultation).

        This is the compute primitive under :meth:`certify_stream` and the
        runtime layer.  With ``n_jobs > 1`` the rows are certified on a
        process pool whose workers receive ``shared_handle`` (attaching the
        dataset zero-copy) when one is given, and the pickled dataset
        otherwise; pool failures fall back to serial certification.
        """
        workers = min(int(n_jobs), len(rows))
        if workers <= 1:
            plan = self._plan_for(dataset, model)
            for row in rows:
                yield self._certify_one(dataset, row, model, plan)
            return
        # Workers rebuild the dataset (from shared memory when possible) and
        # their own plan in the pool initializer, so the parent ships neither.
        payload: Union[Dataset, SharedDatasetHandle] = (
            shared_handle if shared_handle is not None else dataset
        )
        _POOL_PAYLOAD_BYTES.set(
            len(pickle.dumps(payload)),
            kind="shared" if shared_handle is not None else "inline",
        )
        request_id = events.current_request_id()
        # Chunked dispatch: one pool task per *group* of rows, not per row.
        # Per-row tasks made the pool slower than serial on fast workloads —
        # each task pays pickling, queue latency, and a metrics snapshot diff,
        # which for sub-100ms certifications outweighed the certification
        # itself.  ~4 chunks per worker keeps the pool load-balanced against
        # stragglers while amortizing the per-task overhead.
        chunk = max(1, -(-len(rows) // (4 * workers)))
        tasks = [
            _WorkerTask(
                rows=rows[start : start + chunk],
                submitted_at=time.time(),
                request_id=request_id,
            )
            for start in range(0, len(rows), chunk)
        ]
        registry = metrics.get_registry()
        busy_seconds: dict = {}
        pool_started = time.perf_counter()
        yielded = 0
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_initializer,
                initargs=(self, payload, model),
            ) as executor:
                for envelope in executor.map(_pool_certify, tasks):
                    merge_started = time.perf_counter()
                    if envelope.metrics_delta:
                        registry.merge_snapshot(
                            envelope.metrics_delta, task_id=envelope.task_id
                        )
                    _WORKER_MERGE_SECONDS.observe(time.perf_counter() - merge_started)
                    _DISPATCH_OVERHEAD.observe(envelope.dispatch_seconds)
                    _WORKER_TASK_SECONDS.observe(
                        envelope.task_seconds, worker=envelope.worker
                    )
                    busy_seconds[envelope.worker] = (
                        busy_seconds.get(envelope.worker, 0.0) + envelope.task_seconds
                    )
                    yield from envelope.results
                    yielded += len(envelope.results)
            wall = time.perf_counter() - pool_started
            if wall > 0:
                for worker, seconds in busy_seconds.items():
                    _WORKER_UTILIZATION.set(min(1.0, seconds / wall), worker=worker)
            return
        except (OSError, BrokenExecutor) as error:
            # Worker processes could not be spawned (sandboxed hosts forbid
            # fork/spawn, and the failure only surfaces once map() runs).
            warnings.warn(
                f"process pool unavailable ({error}); falling back to serial "
                "certification",
                RuntimeWarning,
                stacklevel=2,
            )
        plan = self._plan_for(dataset, model)
        for row in rows[yielded:]:
            yield self._certify_one(dataset, row, model, plan)

    def certify_point(
        self, dataset: Dataset, x: Sequence[float], model: ModelLike
    ) -> VerificationResult:
        """Certify a single test point (convenience wrapper over :meth:`verify`)."""
        model = resolve_model_classes(as_perturbation_model(model), dataset.n_classes)
        if self.runtime is not None:
            return self.runtime.certify_point(self, dataset, x, model)
        return self._certify_one(
            dataset, np.asarray(x, dtype=float), model, self._plan_for(dataset, model)
        )

    def max_certified(
        self,
        dataset: Dataset,
        x: Sequence[float],
        *,
        model: Optional[PerturbationModel] = None,
        start: int = 1,
        max_budget: Optional[int] = None,
    ):
        """Largest budget in ``[1, max_budget]`` the point is certified for.

        Runs the §6.1 doubling/binary search of
        :func:`repro.verify.search.max_certified_poisoning` against this
        engine for any scalar-budget family (``model`` is the family template
        rebound per probe via ``with_budget``; ``None`` means the paper's
        ``Δn``).  Probes flow through :meth:`certify_point`, so an attached
        runtime answers them from the persistent cache with monotone
        derivation.
        """
        # Deferred: repro.verify.search imports the deprecated verifier shim.
        from repro.verify.search import max_certified_poisoning

        return max_certified_poisoning(
            self, dataset, x, start=start, max_n=max_budget, model=model
        )

    def pareto_frontier(
        self,
        dataset: Dataset,
        x: Sequence[float],
        *,
        max_remove: Optional[int] = None,
        max_flip: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
    ):
        """Maximal certified ``(n_remove, n_flip)`` pairs of one test point.

        The two-dimensional counterpart of :meth:`max_certified` for the
        composite removal+flip family: delegates to
        :func:`repro.verify.search.pareto_frontier` (staircase descent over
        the pair lattice), with probes answered through :meth:`certify_point`
        — and therefore through an attached runtime's componentwise
        pair-dominance cache derivation.
        """
        from repro.verify.search import pareto_frontier

        return pareto_frontier(
            self, dataset, x, max_remove=max_remove, max_flip=max_flip, model=model
        )

    def pareto_sweep(
        self,
        dataset: Dataset,
        points: np.ndarray,
        *,
        max_remove: Optional[int] = None,
        max_flip: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
        n_jobs: int = 1,
    ):
        """Per-point Pareto frontiers for a batch of test points."""
        from repro.verify.search import pareto_sweep

        return pareto_sweep(
            self,
            dataset,
            points,
            max_remove=max_remove,
            max_flip=max_flip,
            model=model,
            n_jobs=n_jobs,
        )

    # ------------------------------------------------------------- dispatch
    def _plan_for(self, dataset: Dataset, model: PerturbationModel) -> _RequestPlan:
        """The shared initial abstraction for one (dataset, model) pair.

        Keyed by the dataset's content fingerprint: object ids can be
        recycled after a dataset is garbage-collected (serving a stale plan),
        and content keys additionally let equal copies of a dataset — e.g.
        one rebuilt from shared memory — share a plan.  The cache is a true
        LRU: hits refresh recency, so a hot (dataset, model) plan survives
        interleaved traffic over more than eight pairs.
        """
        key = (fingerprint_dataset(dataset), model)
        with self._plan_lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_cache.move_to_end(key)
                return plan
        with profiling.phase("plan"):
            return self._build_plan(dataset, model, key)

    def _build_plan(
        self, dataset: Dataset, model: PerturbationModel, key: tuple
    ) -> _RequestPlan:
        budget = model.resolve_budget(len(dataset))
        amount = model.nominal_amount(len(dataset))
        log10_datasets = model.log10_num_neighbors(len(dataset))
        if isinstance(model, (LabelFlipModel, CompositePoisoningModel)):
            if self.predicate_pool is not None:
                raise ValidationError(
                    "predicate pools are not supported for the label-flip/"
                    "composite threat models"
                )
            removals, flips = model.resolve_budgets(len(dataset))
            plan = _RequestPlan(
                amount=amount,
                budget=budget,
                log10_datasets=log10_datasets,
                flips=model.nominal_flip_amount(len(dataset)),
                flip_trainset=FlipAbstractTrainingSet.full(dataset, removals, flips),
            )
        else:
            plan = _RequestPlan(
                amount=amount,
                budget=budget,
                log10_datasets=log10_datasets,
                removal_trainset=AbstractTrainingSet.full(dataset, budget),
            )
        with self._plan_lock:
            # Concurrent builders of the same plan: last writer wins (the
            # plans are equal; rebuilding one is wasted work, not a bug).
            if len(self._plan_cache) >= 8 and key not in self._plan_cache:
                self._plan_cache.popitem(last=False)
            self._plan_cache[key] = plan
        return plan

    def _certify_one(
        self,
        dataset: Dataset,
        x: np.ndarray,
        model: PerturbationModel,
        plan: _RequestPlan,
    ) -> VerificationResult:
        """Certify one point: walk the domain ladder of the plan's family.

        Every family flows through the same loop and the same
        :meth:`_build_result`, so result rows are shape-identical across
        removal, label-flip, and composite certificates (including the
        TIMEOUT / RESOURCE_EXHAUSTED counters).
        """
        if plan.flip_trainset is not None:
            trainset: Union[AbstractTrainingSet, FlipAbstractTrainingSet] = (
                plan.flip_trainset
            )
            domains = _DOMAIN_LADDERS["flip"][self.domain]
        else:
            assert plan.removal_trainset is not None
            trainset = plan.removal_trainset
            domains = _DOMAIN_LADDERS["removal"][self.domain]
        family = "flip" if plan.flip_trainset is not None else "removal"
        # Warm-start key for the Box rungs: budget-independent on purpose, so
        # the next probe of the same (dataset, point, family) at budget n+1
        # (or the next (r, f) staircase step) finds this probe's trace.
        trace_key = (fingerprint_dataset(dataset), point_digest(x), family)
        with tracing.span("engine.certify_one"):
            with profiling.phase("concrete_predict"):
                predicted = int(self._trace_learner.predict(dataset, x))
            watch = Stopwatch().start()
            budget = (
                TimeBudget(self.timeout_seconds)
                if self.timeout_seconds
                else TimeBudget.unlimited()
            )
            last_result: Optional[VerificationResult] = None
            with MemoryTracker() as memory:
                for domain in domains:
                    outcome = self._run_domain(
                        domain, trainset, x, budget, trace_key=trace_key
                    )
                    result = self._build_result(
                        outcome,
                        domain=domain,
                        n=plan.amount,
                        flips=plan.flips,
                        predicted=predicted,
                        log10_datasets=plan.log10_datasets,
                    )
                    last_result = result
                    if result.is_certified:
                        break
            assert last_result is not None
            elapsed = watch.elapsed()
        _LEARNER_INVOCATIONS.inc()
        _CERTIFY_SECONDS.observe(
            elapsed,
            family=family,
            domain=last_result.domain,
            outcome=last_result.status.value,
        )
        return replace(
            last_result,
            elapsed_seconds=elapsed,
            peak_memory_bytes=memory.peak_bytes,
        )

    # ---------------------------------------------------------------- helpers
    def _run_domain(
        self,
        domain: str,
        trainset: Union[AbstractTrainingSet, "FlipAbstractTrainingSet"],
        x: Sequence[float],
        budget: TimeBudget,
        *,
        trace_key: Optional[tuple] = None,
    ) -> "_DomainOutcome":
        """Run one rung of the domain ladder; same learners for every family."""
        is_box = domain not in ("disjuncts", FLIP_DISJUNCTS_DOMAIN)
        learner = self._box_learner if is_box else self._disjunctive_learner
        try:
            with profiling.ladder_stage(domain), tracing.span(f"ladder.{domain}"):
                if is_box:
                    warm = (
                        self._trace_cache.get(trace_key)
                        if trace_key is not None
                        else None
                    )
                    run = learner.run(
                        trainset, x, time_budget=budget, warm_trace=warm
                    )
                    if trace_key is not None:
                        self._record_trace(trace_key, run)
                else:
                    run = learner.run(trainset, x, time_budget=budget)
        except TimeoutExceeded as error:
            return _DomainOutcome(run=None, failure=VerificationStatus.TIMEOUT, message=str(error))
        except (DisjunctBudgetExceeded, MemoryError) as error:
            return _DomainOutcome(
                run=None,
                failure=VerificationStatus.RESOURCE_EXHAUSTED,
                message=str(error),
            )
        return _DomainOutcome(run=run, failure=None, message="")

    def _record_trace(self, trace_key: tuple, run: AbstractRunResult) -> None:
        """Retain a Box run's trace and account its warm-start effectiveness."""
        if run.trace is not None:
            if len(self._trace_cache) >= _TRACE_CACHE_SIZE:
                self._trace_cache.clear()
            self._trace_cache[trace_key] = run.trace
        reused = run.trace_reused
        computed = run.trace_steps - reused
        if reused:
            _TRACE_REUSED.inc(reused)
        if computed:
            _TRACE_REPLAYED.inc(computed)
        local = self._trace_local
        local.steps = getattr(local, "steps", 0) + run.trace_steps
        local.reused = getattr(local, "reused", 0) + reused

    def consume_trace_stats(self) -> Tuple[int, int]:
        """``(filter_steps, warm_reused)`` accumulated on this thread; resets.

        The runtime's batch stats and the search-protocol results read their
        ``trace_reuse_fraction`` from this delta, so concurrent threads on a
        shared engine cannot attribute each other's steps to their operation.
        """
        local = self._trace_local
        steps = int(getattr(local, "steps", 0))
        reused = int(getattr(local, "reused", 0))
        local.steps = 0
        local.reused = 0
        return steps, reused

    def _build_result(
        self,
        outcome: "_DomainOutcome",
        *,
        domain: str,
        n: int,
        flips: int,
        predicted: int,
        log10_datasets: float,
    ) -> VerificationResult:
        if outcome.run is None:
            assert outcome.failure is not None
            return VerificationResult(
                status=outcome.failure,
                poisoning_amount=n,
                poisoning_flips=flips,
                predicted_class=predicted,
                certified_class=None,
                class_intervals=(),
                domain=domain,
                elapsed_seconds=0.0,
                peak_memory_bytes=0,
                exit_count=0,
                max_disjuncts=0,
                log10_num_datasets=log10_datasets,
                message=outcome.message,
            )
        run: AbstractRunResult = outcome.run
        robust_class = run.robust_class
        status = (
            VerificationStatus.ROBUST if robust_class is not None else VerificationStatus.UNKNOWN
        )
        return VerificationResult(
            status=status,
            poisoning_amount=n,
            poisoning_flips=flips,
            predicted_class=predicted,
            certified_class=robust_class,
            class_intervals=run.class_intervals,
            domain=domain,
            elapsed_seconds=0.0,
            peak_memory_bytes=0,
            exit_count=run.exit_count,
            max_disjuncts=run.max_disjuncts,
            log10_num_datasets=log10_datasets,
            message="" if status.is_certified else "no dominating class interval",
        )


@dataclass(frozen=True)
class _DomainOutcome:
    run: Optional[AbstractRunResult]
    failure: Optional[VerificationStatus]
    message: str


# ---------------------------------------------------------------------------
# Process-pool plumbing.  Workers receive the engine/model once via the pool
# initializer together with either a SharedDatasetHandle (attached zero-copy
# from shared memory) or, as a fallback, the pickled dataset; afterwards only
# the (small) test points travel through the task queue — and each result
# travels back inside a `_WorkerEnvelope` that also carries the worker's
# metric delta for that task, so `n_jobs > 1` batches lose no attribution.
# ---------------------------------------------------------------------------

_POOL_STATE: dict = {}


@dataclass(frozen=True)
class _WorkerTask:
    """One pool task: a chunk of rows plus its submit timestamp and request id.

    ``submitted_at`` is ``time.time()`` (wall clock — ``perf_counter`` is not
    comparable across processes) so the worker can report dispatch overhead.
    """

    rows: Sequence[np.ndarray]
    submitted_at: float
    request_id: Optional[str]


@dataclass(frozen=True)
class _WorkerEnvelope:
    """A worker's reply: the chunk's verdicts plus the telemetry to merge
    parent-side."""

    results: Sequence[VerificationResult]
    task_id: str
    worker: str
    task_seconds: float
    dispatch_seconds: float
    metrics_delta: Mapping


def _pool_initializer(
    engine: CertificationEngine,
    dataset: Union[Dataset, SharedDatasetHandle],
    model: PerturbationModel,
) -> None:
    # Snapshot *before* any work: under the fork start method the worker's
    # registry inherits the parent's series wholesale, and everything in this
    # baseline is excluded from the first task's delta.  Attach and plan
    # rebuild happen after, so their cost ships with that first delta.
    _POOL_STATE["baseline"] = metrics.get_registry().snapshot()
    _POOL_STATE["epoch"] = uuid.uuid4().hex[:8]
    _POOL_STATE["task_counter"] = 0
    attach_started = time.perf_counter()
    if isinstance(dataset, SharedDatasetHandle):
        dataset = dataset.attach()
    _POOL_STATE["engine"] = engine
    _POOL_STATE["dataset"] = dataset
    _POOL_STATE["model"] = model
    _POOL_STATE["plan"] = engine._plan_for(dataset, model)
    _POOL_ATTACH_SECONDS.observe(time.perf_counter() - attach_started)


def _pool_certify(task: _WorkerTask) -> _WorkerEnvelope:
    state = _POOL_STATE
    started = time.time()
    dispatch_seconds = max(0.0, started - task.submitted_at)
    task_started = time.perf_counter()
    results = [
        state["engine"]._certify_one(
            state["dataset"], row, state["model"], state["plan"]
        )
        for row in task.rows
    ]
    task_seconds = time.perf_counter() - task_started
    worker = str(os.getpid())
    state["task_counter"] += 1
    task_id = f"{state['epoch']}:{worker}:{state['task_counter']}"
    after = metrics.get_registry().snapshot()
    delta = metrics.diff_snapshots(state["baseline"], after)
    state["baseline"] = after
    statuses = {r.status.value for r in results}
    events.emit(
        "worker.task",
        rid=task.request_id,
        worker=worker,
        task_id=task_id,
        seconds=task_seconds,
        dispatch_seconds=dispatch_seconds,
        points=len(results),
        status=statuses.pop() if len(statuses) == 1 else "mixed",
    )
    return _WorkerEnvelope(
        results=results,
        task_id=task_id,
        worker=worker,
        task_seconds=task_seconds,
        dispatch_seconds=dispatch_seconds,
        metrics_delta=delta,
    )
