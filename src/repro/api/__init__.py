"""The unified certification API.

This subsystem decouples *what* to certify from *how* to certify it:

* :class:`~repro.api.request.CertificationRequest` — a declarative problem
  statement: dataset × test point(s) × a first-class
  :class:`~repro.poisoning.models.PerturbationModel` threat model;
* :class:`~repro.api.engine.CertificationEngine` — the solver: constructed
  once, reused across points, dispatching every threat model through a single
  ``verify(request)`` entry point, with process-pool batching
  (``n_jobs=N``) and order-preserving streaming;
* :class:`~repro.api.report.CertificationReport` — the aggregate result:
  per-status counts, timing percentiles, JSON/CSV export.

The CLI, the experiment harness, the examples, and the benchmarks all run on
this API; the legacy :class:`repro.verify.robustness.PoisoningVerifier` is a
deprecated shim delegating here.
"""

from repro.api.engine import (
    FLIP_DISJUNCTS_DOMAIN,
    FLIP_DOMAIN,
    CertificationEngine,
)
from repro.api.report import SCHEMA_VERSION, CertificationReport
from repro.api.request import CertificationRequest, ModelLike, as_perturbation_model
from repro.api.scheduler import (
    BatchSubmission,
    CertificationScheduler,
    SchedulerStats,
)

__all__ = [
    "BatchSubmission",
    "CertificationEngine",
    "CertificationReport",
    "CertificationRequest",
    "CertificationScheduler",
    "FLIP_DISJUNCTS_DOMAIN",
    "FLIP_DOMAIN",
    "ModelLike",
    "SCHEMA_VERSION",
    "SchedulerStats",
    "as_perturbation_model",
]
