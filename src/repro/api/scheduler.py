"""Async submission and cross-batch coalescing for the certification engine.

The certification workload is embarrassingly request-shaped — one
``(dataset, point, threat model, engine config)`` quadruple maps to one
verdict — which means *identical* requests arriving concurrently (N clients
of a certification service asking about the same point, overlapping batches
of a sweep) should cost one learner invocation, not N.  The persistent cache
already deduplicates across *time*; this module deduplicates across
*in-flight work*:

* :class:`CertificationScheduler` keeps a table of in-flight certification
  keys — ``(dataset fingerprint, point digest, model family+budget, engine
  config)``, the same content-addressed identity the verdict cache uses — and
  lets a batch that encounters a key another batch is already computing
  *lease* that batch's future instead of recomputing the point;
* :meth:`CertificationScheduler.submit` is the asynchronous face: it returns
  a :class:`BatchSubmission` of per-point futures immediately and certifies
  the request on a background thread (coalescing with every other in-flight
  submission);
* ``CertificationEngine.certify_batch`` / ``certify_stream`` are thin clients
  of :meth:`stream_rows`, so synchronous callers participate in the same
  in-flight table as asynchronous and remote (``repro.service``) ones.

Leased results are re-anchored to the lessee's nominal budget exactly like
cache hits (two models resolving to the same family and budget share one
proof), and a lease whose owner fails or abandons its stream falls back to
computing the point locally — coalescing is an optimization, never a new
failure mode.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.report import CertificationReport
from repro.api.request import CertificationRequest
from repro.core.dataset import Dataset
from repro.poisoning.models import PerturbationModel, resolve_model_classes
from repro.runtime.fingerprint import (
    BudgetKey,
    engine_cache_key,
    fingerprint_dataset,
    model_cache_key,
    point_digest,
)
from repro.telemetry import events, metrics, tracing
from repro.utils.timing import Stopwatch
from repro.verify.result import VerificationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import CertificationEngine

_BATCHES = metrics.counter(
    "scheduler_batches_total", "Batches streamed through the scheduler."
)
_SUBMITTED = metrics.counter(
    "scheduler_submitted_total", "Points submitted across all batches."
)
_COALESCED = metrics.counter(
    "scheduler_coalesced_total",
    "Points leased from another batch's in-flight computation.",
)
_LEASE_FALLBACKS = metrics.counter(
    "scheduler_lease_fallback_total",
    "Leases whose owner failed/stalled, recomputed locally.",
)
_LEASE_WAIT_SECONDS = metrics.histogram(
    "scheduler_lease_wait_seconds",
    "Time a batch spent blocked on another batch's in-flight future.",
)

#: The content-addressed identity of one unit of certification work.  Two
#: submissions with equal keys are guaranteed the same verdict, so at most one
#: of them may run the learner.
InflightKey = Tuple[str, str, str, BudgetKey, str]


class InflightAbandoned(RuntimeError):
    """The batch owning an in-flight computation exited before resolving it.

    Lessees never see this exception: :meth:`CertificationScheduler.stream_rows`
    catches it (and any other owner-side failure) and recomputes the leased
    point locally.
    """


@dataclass
class SchedulerStats:
    """Lifetime counters of one scheduler (shown by the service ``stats`` op).

    ``coalesced`` is the headline number: leases granted against another
    batch's in-flight computation instead of running (or even cache-probing)
    one's own.  (A granted lease whose owner fails or stalls is recomputed
    locally — the runtime's lifetime counters record only *delivered*
    leases as deduplicated work.)
    """

    batches: int = 0
    submitted: int = 0
    coalesced: int = 0

    def snapshot(self) -> dict:
        return {
            "batches": self.batches,
            "submitted": self.submitted,
            "coalesced": self.coalesced,
        }


@dataclass
class BatchSubmission:
    """Handle for one asynchronously submitted certification request.

    ``futures`` holds one :class:`concurrent.futures.Future` per request
    point, in request order; :meth:`gather` blocks for all of them and
    :meth:`report` aggregates them into the same
    :class:`~repro.api.report.CertificationReport` a synchronous
    ``verify(request)`` would have produced.
    """

    request: CertificationRequest
    futures: List["Future[VerificationResult]"]
    _watch: Stopwatch = field(default_factory=lambda: Stopwatch().start())
    #: Runtime counters of the batch, captured by the submission thread once
    #: the stream completes (``None`` before completion or without a runtime).
    _runtime_stats: Optional[dict] = None
    #: Set by the submission thread after the stream (and the stats capture
    #: above) finished — the last future resolves slightly *before* that.
    _completed: threading.Event = field(default_factory=threading.Event)

    def done(self) -> bool:
        return all(future.done() for future in self.futures)

    def gather(self, timeout: Optional[float] = None) -> List[VerificationResult]:
        """Block until every point is certified; results in request order.

        ``timeout`` bounds the wait *per point* (the futures resolve in
        request order, so the total wait is at most ``timeout × points``).
        """
        return [future.result(timeout) for future in self.futures]

    def report(self, timeout: Optional[float] = None) -> CertificationReport:
        """Gather into an aggregate report (see :meth:`gather` for waiting)."""
        results = self.gather(timeout)
        self._completed.wait(timeout)
        return CertificationReport(
            results=results,
            model_description=self.request.model.describe(),
            dataset_name=self.request.dataset.name,
            total_seconds=self._watch.elapsed(),
            runtime_stats=self._runtime_stats,
        )


class CertificationScheduler:
    """Coalesce identical in-flight certification work across batches.

    One scheduler guards one engine (``engine.scheduler`` creates it lazily);
    every batch path of that engine — synchronous streams, asynchronous
    submissions, and service requests — registers its points here before
    computing, so concurrent identical questions are answered once.
    """

    #: Background threads driving asynchronous submissions.  The learner is
    #: CPU-bound pure Python, so this is about *concurrency* (overlapping
    #: submissions coalescing against each other), not parallelism — process
    #: pools via ``n_jobs`` remain the parallel execution vehicle.
    DEFAULT_WORKERS = 4

    #: How long a lessee waits for the owning batch before giving up and
    #: computing the point itself.  An owner's stream advances only as fast
    #: as its consumer, so a stalled consumer (a hung streaming client) must
    #: not block other batches forever; the fallback trades duplicated work
    #: for boundedness.
    LEASE_TIMEOUT_SECONDS = 600.0

    def __init__(self, engine: "CertificationEngine", *, max_workers: int = DEFAULT_WORKERS) -> None:
        self._engine = engine
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._inflight: Dict[InflightKey, "Future[VerificationResult]"] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self.stats = SchedulerStats()

    def stats_snapshot(self) -> dict:
        """A consistent copy of the coalescing counters, taken under the lock."""
        with self._lock:
            return self.stats.snapshot()

    # -------------------------------------------------------------- streaming
    def stream(
        self, request: CertificationRequest, *, n_jobs: int = 1
    ) -> Iterator[VerificationResult]:
        """Certify a request's points in order, coalescing with other batches."""
        dataset = request.dataset
        model = resolve_model_classes(request.model, dataset.n_classes)
        rows = [np.asarray(row, dtype=float) for row in request.points]
        return self.stream_rows(dataset, model, rows, n_jobs=n_jobs)

    def stream_rows(
        self,
        dataset: Dataset,
        model: PerturbationModel,
        rows: Sequence[np.ndarray],
        *,
        n_jobs: int = 1,
    ) -> Iterator[VerificationResult]:
        """Certify ``rows`` in order; the coalescing core under every batch.

        Points whose key another batch is already computing are *leased* (the
        other batch's future answers them); the remainder flows through the
        engine's classic batch machinery — runtime cache/journal, process
        pools, shared memory — untouched, so a batch with no concurrent
        overlap behaves exactly as before this layer existed.
        """
        engine = self._engine
        with tracing.span("scheduler.dispatch"):
            fp = fingerprint_dataset(dataset)
            family, budget = model_cache_key(model, len(dataset))
            engine_key = engine_cache_key(engine)
            keys: List[InflightKey] = [
                (fp, point_digest(row), family, budget, engine_key) for row in rows
            ]
        owned_indices: List[int] = []
        owned_futures: Dict[InflightKey, "Future[VerificationResult]"] = {}
        leases: Dict[int, "Future[VerificationResult]"] = {}
        with self._lock:
            self.stats.batches += 1
            self.stats.submitted += len(rows)
            for index, key in enumerate(keys):
                if key in owned_futures:
                    # In-batch duplicate: owned by this batch's first
                    # occurrence; the runtime layer (or plain recomputation
                    # for cache-less engines) handles it exactly as before.
                    owned_indices.append(index)
                    continue
                future = self._inflight.get(key)
                if future is not None:
                    leases[index] = future
                    self.stats.coalesced += 1
                    continue
                future = Future()
                future.set_running_or_notify_cancel()
                self._inflight[key] = future
                owned_futures[key] = future
                owned_indices.append(index)
        _BATCHES.inc()
        _SUBMITTED.inc(len(rows))
        if leases:
            _COALESCED.inc(len(leases))
        # One event per batch: how the points split between freshly registered
        # in-flight leases (owned, computed here) and leases of other batches'
        # futures (coalesced).  Carries the thread's bound request id.
        events.emit(
            "scheduler.lease",
            points=len(rows),
            owned=len(owned_indices),
            coalesced=len(leases),
            n_jobs=n_jobs,
        )
        amount = model.nominal_amount(len(dataset))
        flips = model.nominal_flip_amount(len(dataset))
        log10_datasets = model.log10_num_neighbors(len(dataset))
        if engine.runtime is not None:
            # A fully-leased batch never reaches runtime.stream; reset the
            # thread-local batch counters so a report built after this stream
            # cannot pick up a *previous* batch's stats from a reused thread.
            engine.runtime.last_batch_stats = None
        try:
            computed: Iterator[VerificationResult] = iter(())
            if owned_indices:
                computed = engine._stream_rows(
                    dataset, model, [rows[i] for i in owned_indices], n_jobs=n_jobs
                )
            for index in range(len(rows)):
                lease = leases.get(index)
                if lease is None:
                    with tracing.span("scheduler.point"):
                        try:
                            result = next(computed)
                        except StopIteration:
                            # The batch machinery truncated the stream (a
                            # runtime's max_new_points budget ran out); end
                            # this stream the same way — un-computed futures
                            # are released as abandoned below.
                            return
                        future = owned_futures.get(keys[index])
                        if future is not None and not future.done():
                            future.set_result(result)
                    yield result
                    continue
                wait_started = Stopwatch().start()
                try:
                    leased = lease.result(timeout=self.LEASE_TIMEOUT_SECONDS)
                except BaseException:
                    # The owning batch failed, was abandoned mid-stream, or
                    # its consumer stalled past the lease timeout; compute
                    # the point ourselves rather than surfacing (or waiting
                    # on) a stranger's failure.  The local computation is
                    # what the lifetime stats count — nothing was saved.
                    _LEASE_WAIT_SECONDS.observe(wait_started.elapsed())
                    _LEASE_FALLBACKS.inc()
                    with tracing.span("scheduler.lease_fallback"):
                        fallback = self._certify_locally(dataset, rows[index], model)
                    yield fallback
                else:
                    _LEASE_WAIT_SECONDS.observe(wait_started.elapsed())
                    # Only a *delivered* lease is deduplicated work.
                    if engine.runtime is not None:
                        engine.runtime.record_coalesced(1)
                    yield self._reanchor(leased, amount, flips, log10_datasets, budget)
            # Advance the batch generator past its final yield so its
            # completion work (journal discard, lifetime stats accounting)
            # runs now, not at garbage collection.  A truncated stream
            # returned above instead, leaving its journal for --resume.
            for _ in computed:  # pragma: no cover - defensive, never yields
                pass
        finally:
            self._release(owned_futures)

    # ------------------------------------------------------------- submission
    def submit(
        self, request: CertificationRequest, *, n_jobs: int = 1
    ) -> BatchSubmission:
        """Certify a request asynchronously; returns per-point futures now.

        The batch runs on a background thread through :meth:`stream`, so it
        coalesces with every other in-flight submission and synchronous
        stream of this engine.
        """
        futures: List["Future[VerificationResult]"] = [
            Future() for _ in range(request.n_points)
        ]
        submission = BatchSubmission(request=request, futures=futures)
        self._ensure_executor().submit(self._run_submission, request, submission, n_jobs)
        return submission

    def gather(
        self, submissions: Sequence[BatchSubmission], timeout: Optional[float] = None
    ) -> List[List[VerificationResult]]:
        """Block for several submissions at once (results in submission order)."""
        return [submission.gather(timeout) for submission in submissions]

    def _run_submission(
        self,
        request: CertificationRequest,
        submission: BatchSubmission,
        n_jobs: int,
    ) -> None:
        futures = submission.futures
        try:
            for future, result in zip(futures, self.stream(request, n_jobs=n_jobs)):
                future.set_result(result)
            runtime = self._engine.runtime
            if runtime is not None and runtime.last_batch_stats is not None:
                submission._runtime_stats = runtime.last_batch_stats.snapshot()
            # A truncated stream (a runtime's max_new_points budget) yields
            # fewer results than points; the leftover futures must resolve,
            # not strand their waiters.
            for future in futures:
                if not future.done():
                    future.set_exception(
                        InflightAbandoned(
                            "the stream ended before this point was certified "
                            "(runtime max_new_points truncation)"
                        )
                    )
        except BaseException as error:  # resolve every waiter, never strand one
            for future in futures:
                if not future.done():
                    future.set_exception(error)
        finally:
            submission._completed.set()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-scheduler",
                )
            return self._executor

    # ---------------------------------------------------------------- helpers
    def _certify_locally(
        self, dataset: Dataset, row: np.ndarray, model: PerturbationModel
    ) -> VerificationResult:
        engine = self._engine
        if engine.runtime is not None:
            return engine.runtime.certify_point(engine, dataset, row, model)
        return engine._certify_one(
            dataset, row, model, engine._plan_for(dataset, model)
        )

    @staticmethod
    def _reanchor(
        result: VerificationResult,
        amount: int,
        flips: int,
        log10_datasets: float,
        budget: BudgetKey,
    ) -> VerificationResult:
        """Re-anchor a leased verdict to the lessee's nominal budget.

        Keys coalesce on the *resolved* budget, so the owner may have asked
        with a different nominal amount (``RemovalPoisoningModel(1000)`` vs. a
        fraction resolving to the same count); the same re-anchoring rule the
        cache applies to exact hits keeps the lessee's report honest.
        """
        # Deferred import: repro.runtime.runtime is heavyweight and this
        # module sits on the engine's import path.
        from repro.runtime.cache import CacheHit
        from repro.runtime.runtime import CertificationRuntime

        return CertificationRuntime._adapt_hit(
            CacheHit(result, "exact", budget), amount, flips, log10_datasets
        )

    def _release(
        self, owned: Dict[InflightKey, "Future[VerificationResult]"]
    ) -> None:
        with self._lock:
            for key, future in owned.items():
                if self._inflight.get(key) is future:
                    del self._inflight[key]
        for future in owned.values():
            if not future.done():
                # The stream exited before computing this point (consumer
                # abandoned it, or the compute path raised).  Waiters fall
                # back to local computation when they see the exception.
                future.set_exception(
                    InflightAbandoned("owning batch exited before this point")
                )

    @property
    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    def close(self) -> None:
        """Stop the background submission threads (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
