"""Aggregate certification reports: counts, timings, and export formats.

A :class:`CertificationReport` is what :class:`repro.api.CertificationEngine`
returns for a batch request.  It replaces the ad-hoc result-list handling the
CLI and the experiment harness used to do by hand, and it distinguishes the
two situations the legacy ``certified_fraction`` conflated: *nothing was
certified* (fraction ``0.0``) versus *there was nothing to certify* (fraction
``None``).
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.utils.tables import TextTable
from repro.verify.result import VerificationResult, VerificationStatus

#: Version of the report wire/JSON schema.  Version 1 is the unversioned
#: payload shape of PR 1–4 (no ``schema_version`` key); version 2 added the
#: key itself and is what the ``repro.service`` protocol speaks.  Decoders
#: accept every version up to this one and reject newer payloads instead of
#: silently misreading fields from the future.
SCHEMA_VERSION = 2

#: Column order of :meth:`CertificationReport.to_csv` (one row per result).
#: ``poisoning_flips`` carries the flip component of the budget, so composite
#: ``Δ_{r,f}`` rows export the full pair (``n_remove`` is ``poisoning_amount -
#: poisoning_flips``) instead of silently dropping the flip budget.
CSV_FIELDS = (
    "index",
    "status",
    "poisoning_amount",
    "poisoning_flips",
    "predicted_class",
    "certified_class",
    "domain",
    "elapsed_seconds",
    "peak_memory_bytes",
    "exit_count",
    "max_disjuncts",
    "log10_num_datasets",
    "class_intervals",
    "message",
)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = (len(sorted_values) - 1) * q
    lower = math.floor(position)
    upper = math.ceil(position)
    weight = position - lower
    return float(sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight)


@dataclass
class CertificationReport:
    """Per-point results of one certification batch plus aggregate views.

    Attributes
    ----------
    results:
        One :class:`VerificationResult` per requested test point, in request
        order.
    model_description:
        Human-readable description of the threat model that was certified
        against (``PerturbationModel.describe()``).
    dataset_name / total_seconds:
        Provenance: which dataset the batch ran on and the wall-clock time of
        the whole batch (including any process-pool overhead).
    runtime_stats:
        Optional counters from the :class:`~repro.runtime.CertificationRuntime`
        that served the batch (cache hits/misses, monotone derivations,
        journal restores, learner invocations, shared-memory use); ``None``
        when no runtime was involved.
    frontiers:
        Optional per-point Pareto-frontier rows produced by a composite
        ``(r, f)`` sweep: one dict per point (in request order) with the
        point's maximal certified ``(n_remove, n_flip)`` pairs under
        componentwise dominance (see
        :class:`repro.verify.search.ParetoFrontierResult.to_dict`); ``None``
        for plain certification batches.
    """

    results: List[VerificationResult] = field(default_factory=list)
    model_description: str = ""
    dataset_name: str = ""
    total_seconds: float = 0.0
    runtime_stats: Optional[Dict] = None
    frontiers: Optional[List[Dict]] = None

    # -------------------------------------------------------------- counting
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[VerificationResult]:
        return iter(self.results)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def certified_count(self) -> int:
        return sum(result.is_certified for result in self.results)

    @property
    def certified_fraction(self) -> Optional[float]:
        """Fraction of points proven robust, or ``None`` for an empty batch.

        Returning ``None`` (instead of the legacy ``0.0``) keeps "nothing to
        certify" distinguishable from "nothing certified".
        """
        if not self.results:
            return None
        return self.certified_count / len(self.results)

    @property
    def status_counts(self) -> Dict[str, int]:
        """Per-status counts; every status is present, including zero counts."""
        counts = {status.value: 0 for status in VerificationStatus}
        for result in self.results:
            counts[result.status.value] += 1
        return counts

    # ---------------------------------------------------------------- timing
    @property
    def mean_seconds(self) -> float:
        if not self.results:
            return 0.0
        return sum(result.elapsed_seconds for result in self.results) / len(self.results)

    @property
    def mean_peak_memory_bytes(self) -> float:
        if not self.results:
            return 0.0
        return sum(result.peak_memory_bytes for result in self.results) / len(self.results)

    def elapsed_percentile(self, q: float) -> float:
        """Per-point elapsed-seconds percentile, ``q`` in ``[0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {q}")
        return _percentile(sorted(result.elapsed_seconds for result in self.results), q)

    @property
    def timing_summary(self) -> Dict[str, float]:
        """Mean / p50 / p90 / max of the per-point wall-clock times."""
        elapsed = sorted(result.elapsed_seconds for result in self.results)
        return {
            "mean_seconds": self.mean_seconds,
            "p50_seconds": _percentile(elapsed, 0.50),
            "p90_seconds": _percentile(elapsed, 0.90),
            "max_seconds": elapsed[-1] if elapsed else float("nan"),
        }

    # ---------------------------------------------------------------- export
    def to_dict(self) -> dict:
        """JSON-serializable summary + per-point payloads (schema-versioned)."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "dataset_name": self.dataset_name,
            "model_description": self.model_description,
            "total_seconds": self.total_seconds,
            "total": self.total,
            "certified_count": self.certified_count,
            "certified_fraction": self.certified_fraction,
            "status_counts": self.status_counts,
            "results": [result.to_dict() for result in self.results],
        }
        if self.runtime_stats is not None:
            payload["runtime_stats"] = dict(self.runtime_stats)
        if self.frontiers is not None:
            payload["frontiers"] = [dict(entry) for entry in self.frontiers]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CertificationReport":
        """Reconstruct a report from :meth:`to_dict` output (JSON round-trip).

        Accepts every schema version up to :data:`SCHEMA_VERSION`; payloads
        from before the version field default to version 1 (their shape is a
        strict subset of the current one, so they decode unchanged).
        """
        version = int(payload.get("schema_version", 1))
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"report payload has schema_version={version}, but this "
                f"decoder only understands versions <= {SCHEMA_VERSION}; "
                "upgrade the reader"
            )
        runtime_stats = payload.get("runtime_stats")
        frontiers = payload.get("frontiers")
        return cls(
            results=[VerificationResult.from_dict(entry) for entry in payload["results"]],
            model_description=str(payload.get("model_description", "")),
            dataset_name=str(payload.get("dataset_name", "")),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            runtime_stats=None if runtime_stats is None else dict(runtime_stats),
            frontiers=None if frontiers is None else [dict(entry) for entry in frontiers],
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CertificationReport":
        return cls.from_dict(json.loads(text))

    def to_csv(self) -> str:
        """One CSV row per result (intervals serialized as a JSON cell)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(CSV_FIELDS))
        writer.writeheader()
        for index, result in enumerate(self.results):
            row = result.to_dict()
            row["index"] = index
            row["class_intervals"] = json.dumps(row["class_intervals"])
            writer.writerow(row)
        return buffer.getvalue()

    def frontier_csv(self) -> str:
        """One CSV row per maximal certified ``(n_remove, n_flip)`` pair.

        Only meaningful for reports produced by a composite Pareto sweep
        (``frontiers`` is set); a point whose frontier is empty — not even
        ``(0, 0)`` was certified — contributes a single row with blank budget
        columns so the export still covers every requested point.
        """
        if self.frontiers is None:
            raise ValueError(
                "this report has no Pareto frontiers; frontier_csv() only "
                "applies to composite (r, f) sweep reports"
            )
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["index", "n_remove", "n_flip", "probes"])
        for index, entry in enumerate(self.frontiers):
            pairs = entry.get("frontier", [])
            probes = entry.get("probes", "")
            if not pairs:
                writer.writerow([index, "", "", probes])
                continue
            for n_remove, n_flip in pairs:
                writer.writerow([index, n_remove, n_flip, probes])
        return buffer.getvalue()

    # --------------------------------------------------------------- display
    def render(self) -> str:
        """Human-readable summary table (for the CLI and saved artifacts)."""
        counts = self.status_counts
        timing = self.timing_summary
        fraction = self.certified_fraction
        table = TextTable(["metric", "value"])
        table.add_row(["dataset", self.dataset_name or "-"])
        table.add_row(["threat model", self.model_description or "-"])
        table.add_row(["points", self.total])
        table.add_row(["certified", self.certified_count])
        table.add_row(
            ["certified fraction", "n/a (empty)" if fraction is None else f"{fraction:.1%}"]
        )
        for status in VerificationStatus:
            table.add_row([f"status: {status.value}", counts[status.value]])
        if self.results:
            table.add_row(["mean time (s)", f"{timing['mean_seconds']:.3f}"])
            table.add_row(["p50 time (s)", f"{timing['p50_seconds']:.3f}"])
            table.add_row(["p90 time (s)", f"{timing['p90_seconds']:.3f}"])
            table.add_row(["max time (s)", f"{timing['max_seconds']:.3f}"])
        table.add_row(["batch wall-clock (s)", f"{self.total_seconds:.3f}"])
        stats = self.runtime_stats
        if stats is not None:
            hits = int(stats.get("cache_hits", 0)) + int(
                stats.get("cache_monotone_hits", 0)
            )
            misses = int(stats.get("cache_misses", 0))
            restored = int(stats.get("journal_restored", 0))
            hit_rate = stats.get("hit_rate")
            if hits or misses or restored:
                table.add_row(
                    [
                        "cache",
                        f"{hits} hit(s), {misses} miss(es), "
                        f"{restored} journal-restored"
                        + ("" if hit_rate is None else f" ({hit_rate:.1%} served)"),
                    ]
                )
            table.add_row(
                ["learner invocations", int(stats.get("learner_invocations", 0))]
            )
            table.add_row(
                ["shared-memory plane", "yes" if stats.get("shared_memory") else "no"]
            )
        return table.render()

    def describe(self) -> str:
        fraction = self.certified_fraction
        if fraction is None:
            return "no test points were requested"
        return (
            f"certified {self.certified_count}/{self.total} point(s) "
            f"({fraction:.1%}) against {self.model_description} "
            f"in {self.total_seconds:.2f}s"
        )
