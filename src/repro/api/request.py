"""Certification requests: *what* to certify, decoupled from *how*.

A :class:`CertificationRequest` bundles the three ingredients of a
certification problem — the (trusted-as-observed) training set, the test
point(s) whose predictions should be proven stable, and a first-class
:class:`~repro.poisoning.models.PerturbationModel` describing what the
attacker may have done to the training data.  The request is purely
declarative; :class:`repro.api.engine.CertificationEngine` decides which
abstract domain, budgets, and parallelism to use when solving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.poisoning.models import (
    PerturbationModel,
    RemovalPoisoningModel,
    resolve_model_classes,
)
from repro.utils.validation import ValidationError

#: Anything accepted where a threat model is expected: a model instance, or a
#: bare integer which is interpreted as the paper's ``Δn`` removal model.
ModelLike = Union[PerturbationModel, int]


def as_perturbation_model(model: ModelLike) -> PerturbationModel:
    """Coerce a threat-model argument into a :class:`PerturbationModel`.

    Bare integers keep the paper's (and the legacy API's) shorthand working:
    ``n`` means "up to ``n`` training elements were contributed by the
    attacker", i.e. :class:`RemovalPoisoningModel`.
    """
    if isinstance(model, PerturbationModel):
        return model
    if isinstance(model, bool):
        raise ValidationError(f"threat model must be a PerturbationModel or int, got {model!r}")
    if isinstance(model, (int, np.integer)):
        return RemovalPoisoningModel(int(model))
    raise ValidationError(
        f"threat model must be a PerturbationModel or int, got {type(model).__name__}"
    )


@dataclass(frozen=True, eq=False)
class CertificationRequest:
    """One certification problem: dataset × test point(s) × threat model.

    Attributes
    ----------
    dataset:
        The observed training set ``T``.
    points:
        Test points as a ``(k, n_features)`` matrix.  A single 1-D point is
        accepted and normalized to a one-row matrix.
    model:
        The perturbation family ``Δ(T)`` to certify against
        (:class:`RemovalPoisoningModel`, :class:`FractionalRemovalModel`,
        :class:`LabelFlipModel`, or :class:`CompositePoisoningModel`).
        Class-count-dependent models (label flips, composite) are resolved
        against ``dataset.n_classes`` here; a model declaring a contradictory
        ``n_classes`` is rejected at construction.
    """

    dataset: Dataset
    points: np.ndarray
    model: PerturbationModel

    def __post_init__(self) -> None:
        # Copy (never alias) the caller's array: the request freezes its
        # points, and freezing a borrowed array would mutate caller state.
        points = np.array(self.points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.ndim != 2:
            raise ValidationError(f"points must be 1-D or 2-D, got shape {points.shape}")
        if points.size and points.shape[1] != self.dataset.n_features:
            raise ValidationError(
                f"points have {points.shape[1]} features but the dataset has "
                f"{self.dataset.n_features}"
            )
        points.setflags(write=False)
        object.__setattr__(self, "points", points)
        object.__setattr__(
            self,
            "model",
            resolve_model_classes(
                as_perturbation_model(self.model), self.dataset.n_classes
            ),
        )

    @classmethod
    def single(
        cls, dataset: Dataset, x: Sequence[float], model: ModelLike
    ) -> "CertificationRequest":
        """A request for one test point."""
        return cls(dataset, np.asarray(x, dtype=float), as_perturbation_model(model))

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def budget(self) -> int:
        """The model's integer budget resolved against this training set."""
        return self.model.resolve_budget(len(self.dataset))

    def describe(self) -> str:
        return (
            f"certify {self.n_points} point(s) of {self.dataset.name!r} "
            f"(|T|={len(self.dataset)}) against {self.model.describe()}"
        )
