"""Antidote-style certification of data-poisoning robustness for decision trees.

This package is a from-scratch Python reproduction of *Proving Data-Poisoning
Robustness in Decision Trees* (Drews, Albarghouthi, D'Antoni — PLDI 2020).
It provides:

* the unified certification API (:mod:`repro.api`): the
  :class:`CertificationEngine` single entry point, declarative
  :class:`CertificationRequest` objects with first-class threat models,
  parallel/streaming batch certification, and aggregate
  :class:`CertificationReport` objects with JSON/CSV export;
* a concrete decision-tree substrate (:mod:`repro.core`): datasets,
  predicates, CART-style learning, and the trace-based learner ``DTrace``;
* the abstract domains of the paper (:mod:`repro.domains`): intervals, the
  ``⟨T, n⟩`` training-set domain, abstract predicate sets, and disjunctive
  states;
* the verifier (:mod:`repro.verify`): the abstract learner ``DTrace#`` on the
  Box and disjunctive domains, the naïve enumeration baseline, and the
  poisoning-amount search protocol;
* poisoning threat models and concrete attacks (:mod:`repro.poisoning`);
* synthetic stand-ins for the paper's benchmark datasets
  (:mod:`repro.datasets`); and
* the experiment harness regenerating every table and figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import CertificationEngine, CertificationRequest, RemovalPoisoningModel, load_dataset
>>> split = load_dataset("iris", scale=0.5, seed=1)
>>> engine = CertificationEngine(max_depth=2, domain="either")
>>> report = engine.verify(
...     CertificationRequest(split.train, split.test.X[:4], RemovalPoisoningModel(2))
... )
>>> report.total
4
>>> all(r.status.value in {"robust", "unknown"} for r in report)
True

One engine certifies every threat model through the same entry point
(``RemovalPoisoningModel``, ``FractionalRemovalModel``, ``LabelFlipModel``,
``CompositePoisoningModel``),
batches in parallel with ``engine.verify(request, n_jobs=4)``, and streams
per-point results with ``engine.certify_stream(request)``.  The legacy
``PoisoningVerifier`` API still works but is deprecated.
"""

from repro.api import (
    CertificationEngine,
    CertificationReport,
    CertificationRequest,
    as_perturbation_model,
)

from repro.core.dataset import Dataset, FeatureKind
from repro.core.learner import DecisionTreeLearner, evaluate_accuracy
from repro.core.predicates import (
    EqualityPredicate,
    Predicate,
    SymbolicThresholdPredicate,
    ThresholdPredicate,
)
from repro.core.trace_learner import TraceLearner, TraceResult, learn_trace
from repro.core.tree import DecisionTree, Trace, TreeNode
from repro.datasets import DatasetSplit, figure2_dataset, list_datasets, load_dataset
from repro.domains.interval import Interval
from repro.domains.trainingset import AbstractTrainingSet
from repro.poisoning.attacks import AttackResult, greedy_removal_attack, random_removal_attack
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    PerturbationModel,
    RemovalPoisoningModel,
)
from repro.runtime import (
    CertificationCache,
    CertificationRuntime,
    DatasetStore,
    SharedDatasetHandle,
    fingerprint_dataset,
)
from repro.service import (
    CertificationClient,
    CertificationServer,
    wait_for_server,
)
from repro.verify.abstract_learner import BoxAbstractLearner
from repro.verify.disjunctive_learner import DisjunctiveAbstractLearner
from repro.verify.enumeration import EnumerationResult, verify_by_enumeration
from repro.verify.robustness import (
    PoisoningVerifier,
    VerificationResult,
    VerificationStatus,
)
from repro.verify.search import (
    ParetoFrontierResult,
    PoisoningSearchResult,
    max_certified_poisoning,
    pareto_frontier,
    pareto_sweep,
    robustness_sweep,
)

__version__ = "0.1.0"

__all__ = [
    "CertificationEngine",
    "CertificationReport",
    "CertificationRequest",
    "as_perturbation_model",
    "Dataset",
    "FeatureKind",
    "DecisionTreeLearner",
    "evaluate_accuracy",
    "Predicate",
    "ThresholdPredicate",
    "EqualityPredicate",
    "SymbolicThresholdPredicate",
    "TraceLearner",
    "TraceResult",
    "learn_trace",
    "DecisionTree",
    "Trace",
    "TreeNode",
    "DatasetSplit",
    "figure2_dataset",
    "list_datasets",
    "load_dataset",
    "Interval",
    "AbstractTrainingSet",
    "AttackResult",
    "greedy_removal_attack",
    "random_removal_attack",
    "CompositePoisoningModel",
    "FractionalRemovalModel",
    "LabelFlipModel",
    "PerturbationModel",
    "RemovalPoisoningModel",
    "BoxAbstractLearner",
    "DisjunctiveAbstractLearner",
    "EnumerationResult",
    "verify_by_enumeration",
    "PoisoningVerifier",
    "VerificationResult",
    "VerificationStatus",
    "ParetoFrontierResult",
    "PoisoningSearchResult",
    "max_certified_poisoning",
    "pareto_frontier",
    "pareto_sweep",
    "robustness_sweep",
    "CertificationCache",
    "CertificationClient",
    "CertificationRuntime",
    "CertificationServer",
    "DatasetStore",
    "SharedDatasetHandle",
    "fingerprint_dataset",
    "wait_for_server",
    "__version__",
]
