"""Concrete data-poisoning attack search against the trace learner.

These attacks play the role the attack literature plays in the paper's
related-work section: they *search* for a set of at most ``n`` removals that
changes the classification of a test point.  A successful attack is an exact
proof of non-robustness, which makes attacks useful both as an empirical
complement to certification (how large is the gap between "not certified" and
"actually attackable"?) and as a test oracle: by soundness, the verifier must
never certify a point for which an attack exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.trace_learner import TraceLearner
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class AttackResult:
    """Outcome of an attack search."""

    success: bool
    removed_indices: Tuple[int, ...]
    original_prediction: int
    final_prediction: int
    evaluations: int

    @property
    def budget_used(self) -> int:
        return len(self.removed_indices)


def _prediction_margin(
    learner: TraceLearner, dataset: Dataset, x: Sequence[float], target_class: int
) -> float:
    """Margin of ``target_class`` in the trace's final class probabilities.

    Positive when the target class still wins; the greedy attack removes the
    element whose removal shrinks this margin the most.
    """
    result = learner.run(dataset, x)
    probabilities = np.asarray(result.class_probabilities)
    others = np.delete(probabilities, target_class)
    competitor = float(others.max()) if others.size else 0.0
    return float(probabilities[target_class]) - competitor


def greedy_removal_attack(
    dataset: Dataset,
    x: Sequence[float],
    n: int,
    *,
    max_depth: int = 2,
    impurity: str = "gini",
    candidate_limit: Optional[int] = 64,
    rng: RngLike = None,
) -> AttackResult:
    """Greedy search for up to ``n`` removals that flip the prediction of ``x``.

    At each step the attack evaluates the removal of every candidate element
    (or of a random sample of ``candidate_limit`` elements for large training
    sets) and commits to the removal that most reduces the margin of the
    currently predicted class; it stops as soon as the prediction flips.
    """
    n = check_positive_int(n, "n", allow_zero=True)
    generator = make_rng(rng)
    learner = TraceLearner(max_depth=max_depth, impurity=impurity)
    original_prediction = learner.predict(dataset, x)

    remaining = list(range(len(dataset)))
    removed: List[int] = []
    current = dataset
    evaluations = 0

    for _ in range(min(n, max(0, len(dataset) - 1))):
        if candidate_limit is not None and len(remaining) > candidate_limit:
            candidate_positions = generator.choice(
                len(remaining), size=candidate_limit, replace=False
            )
            candidates = [remaining[int(i)] for i in candidate_positions]
        else:
            candidates = list(remaining)

        best_candidate: Optional[int] = None
        best_margin = float("inf")
        best_prediction = original_prediction
        for candidate in candidates:
            position = remaining.index(candidate)
            trial = current.remove([position])
            evaluations += 1
            margin = _prediction_margin(learner, trial, x, original_prediction)
            prediction = learner.predict(trial, x)
            if prediction != original_prediction:
                best_candidate, best_margin, best_prediction = candidate, margin, prediction
                break
            if margin < best_margin:
                best_candidate, best_margin, best_prediction = candidate, margin, prediction
        if best_candidate is None:
            break

        position = remaining.index(best_candidate)
        current = current.remove([position])
        remaining.pop(position)
        removed.append(best_candidate)
        if best_prediction != original_prediction:
            return AttackResult(
                success=True,
                removed_indices=tuple(removed),
                original_prediction=int(original_prediction),
                final_prediction=int(best_prediction),
                evaluations=evaluations,
            )

    final_prediction = learner.predict(current, x) if removed else original_prediction
    return AttackResult(
        success=bool(final_prediction != original_prediction),
        removed_indices=tuple(removed),
        original_prediction=int(original_prediction),
        final_prediction=int(final_prediction),
        evaluations=evaluations,
    )


def random_removal_attack(
    dataset: Dataset,
    x: Sequence[float],
    n: int,
    *,
    trials: int = 100,
    max_depth: int = 2,
    impurity: str = "gini",
    rng: RngLike = None,
) -> AttackResult:
    """Random-restart attack: sample removal sets of size at most ``n``."""
    n = check_positive_int(n, "n", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    generator = make_rng(rng)
    learner = TraceLearner(max_depth=max_depth, impurity=impurity)
    original_prediction = learner.predict(dataset, x)

    evaluations = 0
    budget = min(n, max(0, len(dataset) - 1))
    for _ in range(trials):
        if budget == 0:
            break
        removed_count = int(generator.integers(1, budget + 1))
        removals = generator.choice(len(dataset), size=removed_count, replace=False)
        poisoned = dataset.remove(removals)
        evaluations += 1
        prediction = learner.predict(poisoned, x)
        if prediction != original_prediction:
            return AttackResult(
                success=True,
                removed_indices=tuple(int(i) for i in sorted(removals)),
                original_prediction=int(original_prediction),
                final_prediction=int(prediction),
                evaluations=evaluations,
            )
    return AttackResult(
        success=False,
        removed_indices=(),
        original_prediction=int(original_prediction),
        final_prediction=int(original_prediction),
        evaluations=evaluations,
    )
