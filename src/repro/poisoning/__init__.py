"""Poisoning threat models and concrete attack search.

* :mod:`repro.poisoning.models` — perturbation models, most importantly the
  paper's ``Δn`` removal model (§4.1) that the verifier certifies against.
* :mod:`repro.poisoning.attacks` — concrete attack search (greedy and random
  removal attacks).  Attacks are the *completeness* counterpart of the
  verifier: a successful attack is a proof of non-robustness, so no sound
  verifier may certify the same point at the same budget.
* :mod:`repro.poisoning.label_flip` — an extension implementing abstract
  transformers for the label-flipping poisoning model discussed in the
  paper's related-work section.
"""

from repro.poisoning.attacks import AttackResult, greedy_removal_attack, random_removal_attack
from repro.poisoning.label_flip import (
    FlipAbstractTrainingSet,
    FlipVerificationResult,
    LabelFlipVerifier,
    verify_composite_by_enumeration,
    verify_flips_by_enumeration,
)
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    PerturbationModel,
    RemovalPoisoningModel,
    resolve_model_classes,
)

__all__ = [
    "AttackResult",
    "greedy_removal_attack",
    "random_removal_attack",
    "FlipAbstractTrainingSet",
    "FlipVerificationResult",
    "LabelFlipVerifier",
    "verify_composite_by_enumeration",
    "verify_flips_by_enumeration",
    "CompositePoisoningModel",
    "FractionalRemovalModel",
    "LabelFlipModel",
    "PerturbationModel",
    "RemovalPoisoningModel",
    "resolve_model_classes",
]
