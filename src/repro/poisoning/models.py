"""Perturbation (threat) models for data poisoning.

The paper's verification target is the ``n``-poisoning model of §4.1:

``Δn(T) = { T' ⊆ T : |T \\ T'| ≤ n }``

i.e. the attacker may have *contributed* up to ``n`` of the elements of the
observed training set, so the "clean" set the defender should have trained on
is ``T`` with up to ``n`` elements removed.  The module also provides a
fractional convenience wrapper (the paper frequently reports ``n`` as a
percentage of ``|T|``) and the label-flipping model discussed in related work,
which the :mod:`repro.poisoning.label_flip` extension certifies against.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.utils.validation import ValidationError, check_fraction, check_positive_int


def _log10_of_big_int(value: int) -> float:
    """``log10`` of a potentially huge Python integer without overflow."""
    if value <= 0:
        return float("-inf")
    digits = str(value)
    if len(digits) <= 15:
        return math.log10(value)
    return math.log10(int(digits[:15])) + (len(digits) - 15)


class PerturbationModel(abc.ABC):
    """A family of neighborhoods ``Δ(T)`` parameterized by the training-set size."""

    @abc.abstractmethod
    def resolve_budget(self, training_size: int) -> int:
        """The per-dataset integer budget (e.g. number of removable elements)."""

    @abc.abstractmethod
    def num_neighbors(self, training_size: int) -> int:
        """Exact ``|Δ(T)|`` for a training set of the given size."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable description of the threat model."""

    def nominal_amount(self, training_size: int) -> int:
        """The budget as results report it (may exceed the training size).

        Defaults to the resolved budget; models parameterized by an explicit
        count ``n`` override this to report ``n`` itself, matching how the
        paper quotes poisoning amounts.
        """
        return self.resolve_budget(training_size)

    def nominal_flip_amount(self, training_size: int) -> int:
        """The label-flip component of the budget as results report it.

        Zero for the pure-removal families; flip-family models override this
        so exported results carry the full ``(amount, flips)`` pair instead of
        silently dropping the flip budget.
        """
        del training_size
        return 0

    def log10_num_neighbors(self, training_size: int) -> float:
        """``log10 |Δ(T)|``; the scale a naïve enumeration would face."""
        return _log10_of_big_int(self.num_neighbors(training_size))

    # ------------------------------------------------------- budget rebinding
    def with_budget(self, n: int) -> "PerturbationModel":
        """A model of the same family with its scalar budget replaced by ``n``.

        This is the protocol the §6.1 search machinery
        (:func:`repro.verify.search.max_certified_poisoning` /
        :func:`~repro.verify.search.robustness_sweep`) sweeps a family with:
        the template model fixes everything *except* the budget, and the
        search rebinds the budget per probe.  One-dimensional families
        override this; families without a scalar budget (the composite
        removal+flip pair) raise and are swept with :meth:`with_budgets`
        through :func:`repro.verify.search.pareto_frontier` instead.
        """
        raise ValidationError(
            f"{type(self).__name__} has no scalar budget to search over; "
            "use with_budgets(n_remove, n_flip) / pareto_frontier for "
            "two-dimensional families"
        )

    def with_budgets(self, n_remove: int, n_flip: int) -> "PerturbationModel":
        """A model of the same family with its ``(r, f)`` budget pair replaced.

        Only meaningful for families parameterized by a removal *and* a flip
        budget (:class:`CompositePoisoningModel`); the Pareto-frontier search
        probes the pair lattice through this hook.
        """
        raise ValidationError(
            f"{type(self).__name__} is not parameterized by an "
            "(n_remove, n_flip) budget pair; use with_budget(n) for "
            "one-dimensional families"
        )


@dataclass(frozen=True)
class RemovalPoisoningModel(PerturbationModel):
    """The paper's ``Δn`` model: up to ``n`` potentially malicious elements."""

    n: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "n", check_positive_int(self.n, "n", allow_zero=True))

    def resolve_budget(self, training_size: int) -> int:
        return min(self.n, training_size)

    def nominal_amount(self, training_size: int) -> int:
        return self.n

    def num_neighbors(self, training_size: int) -> int:
        budget = self.resolve_budget(training_size)
        return sum(math.comb(training_size, i) for i in range(0, budget + 1))

    def with_budget(self, n: int) -> "RemovalPoisoningModel":
        return RemovalPoisoningModel(n)

    def describe(self) -> str:
        return f"removal of up to {self.n} training elements"


@dataclass(frozen=True)
class FractionalRemovalModel(PerturbationModel):
    """``Δn`` with ``n`` given as a fraction of the training-set size."""

    fraction: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fraction", check_fraction(self.fraction, "fraction")
        )

    def resolve_budget(self, training_size: int) -> int:
        return int(math.floor(self.fraction * training_size))

    def num_neighbors(self, training_size: int) -> int:
        budget = self.resolve_budget(training_size)
        return RemovalPoisoningModel(budget).num_neighbors(training_size)

    def with_budget(self, n: int) -> RemovalPoisoningModel:
        # A fractional model denotes the same ``Δn`` space as the removal
        # model once resolved (they share the cache family), so the scalar
        # search sweeps it over explicit element counts.
        return RemovalPoisoningModel(n)

    def describe(self) -> str:
        return f"removal of up to {self.fraction:.2%} of the training elements"


@dataclass(frozen=True)
class LabelFlipModel(PerturbationModel):
    """Up to ``n`` training labels flipped to arbitrary other classes.

    This is the alternative poisoning model of the related-work discussion
    (label contamination); the engine certifies against it through the flip
    abstract domain of :mod:`repro.poisoning.label_flip`.

    ``n_classes`` defaults to ``None`` ("resolve from the dataset"): the
    engine fills it in at plan time via :func:`resolve_model_classes`, so a
    default-constructed model on a 3-class dataset counts 2 label
    alternatives per flip, not the former hard-wired 1.  An explicitly
    declared ``n_classes`` that contradicts the dataset is rejected instead
    of silently fragmenting cache keys.
    """

    n: int
    n_classes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "n", check_positive_int(self.n, "n", allow_zero=True))
        if self.n_classes is not None:
            object.__setattr__(
                self, "n_classes", check_positive_int(self.n_classes, "n_classes")
            )

    @property
    def resolved_classes(self) -> int:
        """``n_classes`` once resolved; raises while still unresolved."""
        if self.n_classes is None:
            raise ValidationError(
                "LabelFlipModel.n_classes is unresolved; certify through "
                "CertificationRequest/CertificationEngine (which resolve it from "
                "the dataset) or construct the model with n_classes=..."
            )
        return self.n_classes

    def resolve_budget(self, training_size: int) -> int:
        return min(self.n, training_size)

    def resolve_budgets(self, training_size: int) -> Tuple[int, int]:
        """The ``(removals, flips)`` pair seeding the flip abstraction."""
        return 0, self.resolve_budget(training_size)

    def nominal_amount(self, training_size: int) -> int:
        return self.n

    def nominal_flip_amount(self, training_size: int) -> int:
        del training_size
        return self.n

    def num_neighbors(self, training_size: int) -> int:
        budget = self.resolve_budget(training_size)
        alternatives = max(1, self.resolved_classes - 1)
        return sum(
            math.comb(training_size, i) * alternatives**i for i in range(0, budget + 1)
        )

    def with_budget(self, n: int) -> "LabelFlipModel":
        # ``replace`` keeps an explicitly declared (or already resolved)
        # n_classes, so every probe of a sweep shares the cache family key.
        return replace(self, n=n)

    def describe(self) -> str:
        return f"flipping of up to {self.n} training labels"


@dataclass(frozen=True)
class CompositePoisoningModel(PerturbationModel):
    """The combined threat model ``Δ_{r,f}``: removals *then* label flips.

    ``Δ_{r,f}(T) = { flip_{≤f}(T') : T' ⊆ T, |T \\ T'| ≤ r }`` — the attacker
    may have contributed up to ``n_remove`` whole elements *and* corrupted up
    to ``n_flip`` labels of genuine elements.  ``n_remove = 0`` degenerates to
    :class:`LabelFlipModel`; ``n_flip = 0`` recovers the paper's ``Δn``.

    Like :class:`LabelFlipModel`, ``n_classes`` is resolved from the dataset
    at plan time when left as ``None``.
    """

    n_remove: int
    n_flip: int
    n_classes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "n_remove", check_positive_int(self.n_remove, "n_remove", allow_zero=True)
        )
        object.__setattr__(
            self, "n_flip", check_positive_int(self.n_flip, "n_flip", allow_zero=True)
        )
        if self.n_classes is not None:
            object.__setattr__(
                self, "n_classes", check_positive_int(self.n_classes, "n_classes")
            )

    @property
    def resolved_classes(self) -> int:
        """``n_classes`` once resolved; raises while still unresolved."""
        if self.n_classes is None:
            raise ValidationError(
                "CompositePoisoningModel.n_classes is unresolved; certify through "
                "CertificationRequest/CertificationEngine (which resolve it from "
                "the dataset) or construct the model with n_classes=..."
            )
        return self.n_classes

    def resolve_budgets(self, training_size: int) -> Tuple[int, int]:
        """The ``(removals, flips)`` pair seeding the flip abstraction."""
        return min(self.n_remove, training_size), min(self.n_flip, training_size)

    def resolve_budget(self, training_size: int) -> int:
        """Total contamination budget (elements removed plus labels flipped)."""
        removals, flips = self.resolve_budgets(training_size)
        return removals + flips

    def nominal_amount(self, training_size: int) -> int:
        return self.n_remove + self.n_flip

    def nominal_flip_amount(self, training_size: int) -> int:
        del training_size
        return self.n_flip

    def with_budgets(self, n_remove: int, n_flip: int) -> "CompositePoisoningModel":
        # ``replace`` keeps an explicitly declared (or already resolved)
        # n_classes, so every probe of a frontier shares the cache family key.
        return replace(self, n_remove=n_remove, n_flip=n_flip)

    def num_neighbors(self, training_size: int) -> int:
        """Exact ``|Δ_{r,f}(T)|``: choose removals, then flips of survivors."""
        removals, flips = self.resolve_budgets(training_size)
        alternatives = max(1, self.resolved_classes - 1)
        total = 0
        for removed in range(0, removals + 1):
            survivors = training_size - removed
            flip_variants = sum(
                math.comb(survivors, j) * alternatives**j
                for j in range(0, min(flips, survivors) + 1)
            )
            total += math.comb(training_size, removed) * flip_variants
        return total

    def describe(self) -> str:
        return (
            f"removal of up to {self.n_remove} training elements and "
            f"flipping of up to {self.n_flip} labels"
        )


def resolve_model_classes(
    model: PerturbationModel, n_classes: int
) -> PerturbationModel:
    """Resolve a class-count-dependent model against the dataset it certifies.

    Label-flip and composite models need the dataset's class count to size
    their perturbation space (``|Δ(T)|`` scales with the number of label
    alternatives) and their cache family key.  A model constructed with
    ``n_classes=None`` is completed from the dataset here; a model that
    *declares* a class count contradicting the dataset is rejected — silently
    trusting either side would report a wrong ``log10 |Δ(T)|`` and fragment
    cache keys for identical verdicts.  Models without a class-count knob
    pass through unchanged.
    """
    if not isinstance(model, (LabelFlipModel, CompositePoisoningModel)):
        return model
    if model.n_classes is None:
        return replace(model, n_classes=int(n_classes))
    if model.n_classes != n_classes:
        raise ValidationError(
            f"{type(model).__name__} declares n_classes={model.n_classes} but the "
            f"dataset has {n_classes} classes; drop the explicit n_classes to "
            "resolve it from the dataset"
        )
    return model
