"""Perturbation (threat) models for data poisoning.

The paper's verification target is the ``n``-poisoning model of §4.1:

``Δn(T) = { T' ⊆ T : |T \\ T'| ≤ n }``

i.e. the attacker may have *contributed* up to ``n`` of the elements of the
observed training set, so the "clean" set the defender should have trained on
is ``T`` with up to ``n`` elements removed.  The module also provides a
fractional convenience wrapper (the paper frequently reports ``n`` as a
percentage of ``|T|``) and the label-flipping model discussed in related work,
which the :mod:`repro.poisoning.label_flip` extension certifies against.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_positive_int


def _log10_of_big_int(value: int) -> float:
    """``log10`` of a potentially huge Python integer without overflow."""
    if value <= 0:
        return float("-inf")
    digits = str(value)
    if len(digits) <= 15:
        return math.log10(value)
    return math.log10(int(digits[:15])) + (len(digits) - 15)


class PerturbationModel(abc.ABC):
    """A family of neighborhoods ``Δ(T)`` parameterized by the training-set size."""

    @abc.abstractmethod
    def resolve_budget(self, training_size: int) -> int:
        """The per-dataset integer budget (e.g. number of removable elements)."""

    @abc.abstractmethod
    def num_neighbors(self, training_size: int) -> int:
        """Exact ``|Δ(T)|`` for a training set of the given size."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable description of the threat model."""

    def nominal_amount(self, training_size: int) -> int:
        """The budget as results report it (may exceed the training size).

        Defaults to the resolved budget; models parameterized by an explicit
        count ``n`` override this to report ``n`` itself, matching how the
        paper quotes poisoning amounts.
        """
        return self.resolve_budget(training_size)

    def log10_num_neighbors(self, training_size: int) -> float:
        """``log10 |Δ(T)|``; the scale a naïve enumeration would face."""
        return _log10_of_big_int(self.num_neighbors(training_size))


@dataclass(frozen=True)
class RemovalPoisoningModel(PerturbationModel):
    """The paper's ``Δn`` model: up to ``n`` potentially malicious elements."""

    n: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "n", check_positive_int(self.n, "n", allow_zero=True))

    def resolve_budget(self, training_size: int) -> int:
        return min(self.n, training_size)

    def nominal_amount(self, training_size: int) -> int:
        return self.n

    def num_neighbors(self, training_size: int) -> int:
        budget = self.resolve_budget(training_size)
        return sum(math.comb(training_size, i) for i in range(0, budget + 1))

    def describe(self) -> str:
        return f"removal of up to {self.n} training elements"


@dataclass(frozen=True)
class FractionalRemovalModel(PerturbationModel):
    """``Δn`` with ``n`` given as a fraction of the training-set size."""

    fraction: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fraction", check_fraction(self.fraction, "fraction")
        )

    def resolve_budget(self, training_size: int) -> int:
        return int(math.floor(self.fraction * training_size))

    def num_neighbors(self, training_size: int) -> int:
        budget = self.resolve_budget(training_size)
        return RemovalPoisoningModel(budget).num_neighbors(training_size)

    def describe(self) -> str:
        return f"removal of up to {self.fraction:.2%} of the training elements"


@dataclass(frozen=True)
class LabelFlipModel(PerturbationModel):
    """Up to ``n`` training labels flipped to arbitrary other classes.

    This is the alternative poisoning model of the related-work discussion
    (label contamination); the extension verifier in
    :mod:`repro.poisoning.label_flip` certifies against it.
    """

    n: int
    n_classes: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "n", check_positive_int(self.n, "n", allow_zero=True))
        object.__setattr__(
            self, "n_classes", check_positive_int(self.n_classes, "n_classes")
        )

    def resolve_budget(self, training_size: int) -> int:
        return min(self.n, training_size)

    def nominal_amount(self, training_size: int) -> int:
        return self.n

    def num_neighbors(self, training_size: int) -> int:
        budget = self.resolve_budget(training_size)
        alternatives = max(1, self.n_classes - 1)
        return sum(
            math.comb(training_size, i) * alternatives**i for i in range(0, budget + 1)
        )

    def describe(self) -> str:
        return f"flipping of up to {self.n} training labels"
