"""Extension: certifying robustness against label-flipping (and mixed) poisoning.

The paper's related-work section points to a second widely studied poisoning
model in which the attacker does not *add* training elements but corrupts the
**labels** of existing ones (e.g. Xiao et al.'s adversarial label flips).
This module extends the abstract-interpretation machinery to the combined
threat model

``Δ_{r,f}(T) = { flip_{≤f}(T') : T' ⊆ T, |T \\ T'| ≤ r }``

i.e. the attacker may have contributed up to ``r`` whole elements *and*
corrupted up to ``f`` labels of genuine elements.  Setting ``r = 0`` gives the
pure label-flip model; ``f = 0`` recovers the paper's ``Δn``.

The abstraction mirrors §4 of the paper: an element ``⟨T, r, f⟩`` tracks the
surviving rows plus the two budgets, class-count intervals absorb both
budgets, and the trace-based abstract learner joins the class-probability
intervals of every exit state.  :class:`FlipAbstractTrainingSet` implements
the transformer protocol the generic learners dispatch on
(``class_probability_intervals`` / ``pure_exit_intervals`` /
``abstract_best_split`` / ``split_down`` / ``join``), so both the Box-style
:class:`~repro.verify.abstract_learner.BoxAbstractLearner` and the
disjunctive :class:`~repro.verify.disjunctive_learner.DisjunctiveAbstractLearner`
run directly on flip/composite abstractions; :class:`LabelFlipVerifier` is
the thin Box-only convenience wrapper kept for the original extension API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset, FeatureKind
from repro.core.predicates import (
    Predicate,
    SymbolicThresholdPredicate,
    ThresholdPredicate,
    point_satisfies,
)
from repro.core import split_plan
from repro.core.trace_learner import TraceLearner
from repro.domains.interval import Interval, dominating_component, join_interval_vectors, mul_bounds
from repro.domains.predicate_set import AbstractPredicateSet
from repro.utils.timing import TimeBudget
from repro.utils.validation import ValidationError, check_index_array, check_positive_int


# ---------------------------------------------------------------------------
# The abstract element ⟨T, r, f⟩
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlipAbstractTrainingSet:
    """Abstract element for the combined removal + label-flip threat model."""

    dataset: Dataset
    indices: np.ndarray
    removals: int
    flips: int

    def __post_init__(self) -> None:
        indices = check_index_array(self.indices, len(self.dataset), "indices")
        indices.setflags(write=False)
        removals = check_positive_int(self.removals, "removals", allow_zero=True)
        flips = check_positive_int(self.flips, "flips", allow_zero=True)
        removals = min(removals, int(indices.size))
        flips = min(flips, int(indices.size))
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "removals", removals)
        object.__setattr__(self, "flips", flips)

    @classmethod
    def full(cls, dataset: Dataset, removals: int, flips: int) -> "FlipAbstractTrainingSet":
        return cls(dataset, np.arange(len(dataset), dtype=np.int64), removals, flips)

    @classmethod
    def _trusted(
        cls, dataset: Dataset, indices: np.ndarray, removals: int, flips: int
    ) -> "FlipAbstractTrainingSet":
        """Construct without re-validating ``indices``.

        Same contract as :meth:`AbstractTrainingSet._trusted`: callers must
        pass index arrays that are sorted, unique, and in-range by
        construction; both budgets are clamped to the element size here.
        """
        obj = object.__new__(cls)
        size = int(indices.size)
        object.__setattr__(obj, "dataset", dataset)
        object.__setattr__(obj, "indices", indices)
        object.__setattr__(obj, "removals", removals if removals <= size else size)
        object.__setattr__(obj, "flips", flips if flips <= size else size)
        return obj

    # ----------------------------------------------------------------- basics
    @property
    def size(self) -> int:
        return int(self.indices.size)

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.y[self.indices]

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.dataset.n_classes).astype(np.int64)

    # ---------------------------------------------------------------- lattice
    def _require_same_base(self, other: "FlipAbstractTrainingSet") -> None:
        if self.dataset is not other.dataset:
            raise ValidationError("flip abstract sets must share the same base dataset")

    def join(self, other: "FlipAbstractTrainingSet") -> "FlipAbstractTrainingSet":
        """Sound join: rows follow Definition 4.1, flip budgets take the max."""
        self._require_same_base(other)
        # Mask-based set arithmetic, mirroring AbstractTrainingSet.join: one
        # O(N) pass instead of union1d/intersect1d sorts.
        mask = np.zeros(len(self.dataset), dtype=bool)
        mask[self.indices] = True
        common = int(np.count_nonzero(mask[other.indices]))
        mask[other.indices] = True
        union = np.flatnonzero(mask)
        only_self = self.size - common
        only_other = other.size - common
        removals = max(only_self + other.removals, only_other + self.removals)
        return FlipAbstractTrainingSet._trusted(
            self.dataset, union, removals, max(self.flips, other.flips)
        )

    # ---------------------------------------------------------- transformers
    def split_down(self, predicate: Predicate, branch: bool) -> "FlipAbstractTrainingSet":
        """Filter by a predicate; label flips never move elements across the split."""
        if isinstance(predicate, SymbolicThresholdPredicate):
            piece, _, _ = self._split_down_symbolic_counts(predicate, branch)
            return piece
        if isinstance(predicate, ThresholdPredicate):
            kept = split_plan.plan_for(self.dataset).threshold_split(
                self.indices, predicate.feature, predicate.threshold, branch
            )
        else:
            mask = predicate.evaluate_matrix(self.dataset.X[self.indices])
            if not branch:
                mask = ~mask
            kept = self.indices[mask]
        return FlipAbstractTrainingSet._trusted(
            self.dataset, kept, self.removals, self.flips
        )

    def _split_down_symbolic_counts(
        self, predicate: SymbolicThresholdPredicate, branch: bool
    ) -> Tuple["FlipAbstractTrainingSet", int, int]:
        """Symbolic split plus its ``(tight, loose)`` sizes (for filter traces).

        The tight side (``x <= a`` resp. ``x >= b``) is a subset of the loose
        side (``x < b`` resp. ``x > a``) because ``a < b``, so the tight⊔loose
        join degenerates to the loose row set with
        ``r' = min(l, max(min(r, l), (l - t) + min(r, t)))`` and
        ``f' = min(f, l)`` — no set operations needed.
        """
        loose_indices, t, l = split_plan.plan_for(self.dataset).symbolic_split(
            self.indices, predicate.feature, predicate.low, predicate.high, branch
        )
        removals = max(min(self.removals, l), (l - t) + min(self.removals, t))
        return (
            FlipAbstractTrainingSet._trusted(
                self.dataset, loose_indices, removals, self.flips
            ),
            t,
            l,
        )

    def class_probability_intervals(self, method: str = "optimal") -> Tuple[Interval, ...]:
        """``cprob#`` for the combined model.

        ``"optimal"`` is tight per component: for class ``i`` with count
        ``c_i``, the worst case removes ``r`` class-``i`` elements and flips
        ``f`` more away; the best case removes ``r`` elements of other classes
        and flips ``f`` others towards ``i``.  ``"box"`` is the naïve
        interval-numerator / interval-denominator lifting of §4.4, provided so
        the cprob ablation covers the flip families too.
        """
        k = self.dataset.n_classes
        size = self.size
        remaining = size - self.removals
        if remaining <= 0:
            return tuple(Interval.unit() for _ in range(k))
        counts = self.class_counts()
        if method == "box":
            denominator = Interval(float(remaining), float(size))
            return tuple(
                Interval(
                    float(max(0, int(count) - self.removals - self.flips)),
                    float(min(int(count) + self.flips, size)),
                ).divide(denominator)
                for count in counts
            )
        if method != "optimal":
            raise ValueError(f"unknown cprob method {method!r}")
        intervals = []
        for count in counts:
            count = int(count)
            lower = max(0, count - self.removals - self.flips) / remaining
            upper = min(count + self.flips, remaining) / remaining
            intervals.append(Interval(min(lower, 1.0), min(upper, 1.0)))
        return tuple(intervals)

    def gini_interval(self) -> Interval:
        total = Interval.zero()
        one = Interval.point(1.0)
        for component in self.class_probability_intervals():
            total = total + component * (one - component)
        return total

    def entropy_definitely_zero(self) -> bool:
        return self.gini_interval().upper_at_most(0.0)

    def pure_is_feasible(self) -> bool:
        """Whether some concretization is single-class (for the ``ent = 0`` exit)."""
        counts = self.class_counts()
        total = counts.sum()
        for count in counts:
            others = int(total - count)
            if others <= self.removals + self.flips:
                return True
        return False

    def pure_exit_intervals(self) -> Optional[Tuple[Interval, ...]]:
        """Joined class-probability vectors of every feasible pure exit."""
        counts = self.class_counts()
        total = int(counts.sum())
        vectors: List[Tuple[Interval, ...]] = []
        for class_index, count in enumerate(counts):
            others = total - int(count)
            if others > self.removals + self.flips:
                continue
            vector = tuple(
                Interval.point(1.0) if i == class_index else Interval.point(0.0)
                for i in range(self.dataset.n_classes)
            )
            vectors.append(vector)
        if not vectors:
            return None
        joined = vectors[0]
        for vector in vectors[1:]:
            joined = join_interval_vectors(joined, vector)
        return joined

    def abstract_best_split(
        self,
        *,
        method: str = "optimal",
        predicate_pool: Optional[Sequence[Predicate]] = None,
    ) -> AbstractPredicateSet:
        """``bestSplit#`` as the generic learners consume it.

        This is the dispatch target of
        :func:`repro.verify.transformers.best_split_abstract`, letting the Box
        and disjunctive learners interpret flip/composite abstractions with no
        flip-specific code.  The candidate score bounds of
        :func:`flip_best_split_abstract` are sound for either ``cprob``
        method, so ``method`` only affects exit-interval tightness elsewhere.
        """
        del method
        if predicate_pool is not None:
            raise ValidationError(
                "predicate pools are not supported for the label-flip/composite "
                "threat models"
            )
        predicates, includes_null = flip_best_split_abstract(self)
        return AbstractPredicateSet.of(predicates, includes_null=includes_null)


# ---------------------------------------------------------------------------
# Abstract bestSplit and filter for the combined model
# ---------------------------------------------------------------------------


def _flip_side_score_bounds(
    sizes: np.ndarray, class_counts: np.ndarray, removals: int, flips: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized bounds of ``|side| * gini(side)`` under the combined model.

    This is the per-side primitive: ``flips`` here is the flip budget granted
    to *this* side alone.  :func:`_flip_split_score_bounds` combines the two
    sides over all ways of allocating the shared flip budget between them.
    """
    sizes = sizes.astype(np.float64)
    counts = class_counts.astype(np.float64)
    side_removals = np.minimum(float(removals), sizes)
    side_flips = np.minimum(float(flips), sizes)
    remaining = sizes - side_removals

    lower = np.zeros_like(counts)
    upper = np.ones_like(counts)
    positive = remaining > 0
    safe_remaining = np.where(positive, remaining, 1.0)[:, None]
    budget = (side_removals + side_flips)[:, None]
    lower_pos = np.maximum(0.0, counts - budget) / safe_remaining
    upper_pos = np.minimum(counts + side_flips[:, None], remaining[:, None]) / safe_remaining
    mask = positive[:, None]
    lower = np.where(mask, np.minimum(lower_pos, 1.0), lower)
    upper = np.where(mask, np.minimum(upper_pos, 1.0), upper)

    term_lower, term_upper = mul_bounds(lower, upper, 1.0 - upper, 1.0 - lower)
    gini_lower = term_lower.sum(axis=1)
    gini_upper = term_upper.sum(axis=1)
    return mul_bounds(remaining, sizes, gini_lower, gini_upper)


def _flip_side_score_bounds_batch(
    sizes: np.ndarray,
    class_counts: np.ndarray,
    removals: int,
    flip_allocations: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`_flip_side_score_bounds` over a vector of flip budgets.

    Evaluates the per-side bounds for every candidate *and* every flip
    allocation at once: ``sizes`` has shape ``(c,)``, ``class_counts`` shape
    ``(c, k)``, ``flip_allocations`` shape ``(a,)``; the result arrays have
    shape ``(c, a)``.  The arithmetic is the same as the scalar kernel, just
    broadcast over a ``(c, a, k)`` cube.
    """
    sizes = sizes.astype(np.float64)
    counts = class_counts.astype(np.float64)
    side_removals = np.minimum(float(removals), sizes)  # (c,)
    side_flips = np.minimum(
        flip_allocations.astype(np.float64)[None, :], sizes[:, None]
    )  # (c, a)
    remaining = sizes - side_removals  # (c,)

    positive = remaining > 0
    safe_remaining = np.where(positive, remaining, 1.0)[:, None, None]  # (c, 1, 1)
    budget = (side_removals[:, None] + side_flips)[:, :, None]  # (c, a, 1)
    cube_counts = counts[:, None, :]  # (c, 1, k)
    lower_pos = np.maximum(0.0, cube_counts - budget) / safe_remaining
    upper_pos = (
        np.minimum(cube_counts + side_flips[:, :, None], remaining[:, None, None])
        / safe_remaining
    )
    mask = positive[:, None, None]
    lower = np.where(mask, np.minimum(lower_pos, 1.0), 0.0)
    upper = np.where(mask, np.minimum(upper_pos, 1.0), 1.0)

    term_lower, term_upper = mul_bounds(lower, upper, 1.0 - upper, 1.0 - lower)
    gini_lower = term_lower.sum(axis=2)  # (c, a)
    gini_upper = term_upper.sum(axis=2)
    return mul_bounds(
        remaining[:, None], sizes[:, None], gini_lower, gini_upper
    )


def _flip_split_score_bounds(
    left_sizes: np.ndarray,
    left_class_counts: np.ndarray,
    right_sizes: np.ndarray,
    right_class_counts: np.ndarray,
    removals: int,
    flips: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bounds of ``score(left) + score(right)`` with the flip budget shared.

    A single flipped label lives on exactly one side of a split, so a sound
    *and tight* bound ranges over the allocations ``f_l + f_r ≤ f`` rather
    than granting the full flip budget to both sides at once (which
    double-counts every flip and was the pre-fix behavior).  The per-side
    bounds widen monotonically in the flip budget, so the extremes over
    ``f_l + f_r ≤ f`` are attained on the boundary ``f_l + f_r = f``: the
    batched kernel evaluates all ``f + 1`` boundary allocations as one
    ``(n_candidates, f + 1, n_classes)`` broadcast (left side gets
    ``f_l = 0..f``, right side the reversed vector) and the envelope is a
    min/max over the allocation axis.  The removal budget is *not* allocated
    — each side keeps the full ``r`` — because removal already
    over-approximates per-side independently in the removal-only transformer.
    :func:`_flip_split_score_bounds_reference` retains the allocation-at-a-
    time evaluation as the property-test oracle.
    """
    allocations = np.arange(flips + 1, dtype=np.int64)
    left_lower, left_upper = _flip_side_score_bounds_batch(
        left_sizes, left_class_counts, removals, allocations
    )
    right_lower, right_upper = _flip_side_score_bounds_batch(
        right_sizes, right_class_counts, removals, allocations[::-1]
    )
    score_lower = (left_lower + right_lower).min(axis=1)
    score_upper = (left_upper + right_upper).max(axis=1)
    return score_lower, score_upper


def _flip_split_score_bounds_reference(
    left_sizes: np.ndarray,
    left_class_counts: np.ndarray,
    right_sizes: np.ndarray,
    right_class_counts: np.ndarray,
    removals: int,
    flips: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Allocation-at-a-time mirror of :func:`_flip_split_score_bounds`.

    Retained as the property-test oracle for the batched kernel: one flip
    allocation per loop iteration through the scalar-budget side kernel.
    """
    score_lower: Optional[np.ndarray] = None
    score_upper: Optional[np.ndarray] = None
    for left_flips in range(flips + 1):
        left_lower, left_upper = _flip_side_score_bounds(
            left_sizes, left_class_counts, removals, left_flips
        )
        right_lower, right_upper = _flip_side_score_bounds(
            right_sizes, right_class_counts, removals, flips - left_flips
        )
        allocation_lower = left_lower + right_lower
        allocation_upper = left_upper + right_upper
        if score_lower is None:
            score_lower, score_upper = allocation_lower, allocation_upper
        else:
            score_lower = np.minimum(score_lower, allocation_lower)
            score_upper = np.maximum(score_upper, allocation_upper)
    assert score_lower is not None and score_upper is not None
    return score_lower, score_upper


def flip_best_split_abstract(
    trainset: FlipAbstractTrainingSet,
) -> Tuple[List[Predicate], bool]:
    """``bestSplit#`` under the combined model.

    Returns ``(predicates, includes_null)`` following the same Φ∃ / Φ∀ logic
    as the removal-only transformer; flips never change which rows fall on
    which side of a split, so the non-triviality conditions only involve the
    removal budget.
    """
    if trainset.size == 0:
        return [], True
    plan = split_plan.plan_for(trainset.dataset)
    removals = trainset.removals
    flips = trainset.flips
    cache_key = (trainset.indices.tobytes(), removals, flips)
    cached = plan.cached_best_split(cache_key)
    if cached is not None:
        return cached
    tables = plan.node_tables(trainset.indices)

    def materialize(feature: int, kind: FeatureKind, table, positions) -> List[Predicate]:
        if kind is FeatureKind.REAL:
            return [
                split_plan.symbolic_predicate(
                    feature,
                    float(table.lower_values[int(i)]),
                    float(table.upper_values[int(i)]),
                )
                for i in positions
            ]
        return [
            split_plan.threshold_predicate(feature, float(table.thresholds[int(i)]))
            for i in positions
        ]

    stacked = tables.stacked
    groups = []
    if stacked is not None:
        # One (n_candidates, flips + 1, n_classes) batch over every threshold
        # candidate of every feature; per-feature groups slice the result.
        all_lower, all_upper = _flip_split_score_bounds(
            stacked.left_sizes,
            stacked.left_class_counts,
            stacked.right_sizes,
            stacked.right_class_counts,
            removals,
            flips,
        )
        all_universal = (stacked.left_sizes > removals) & (
            stacked.right_sizes > removals
        )
        for feature, kind in enumerate(trainset.dataset.feature_kinds):
            part = stacked.feature_slice(feature)
            if part.stop == part.start:
                continue
            groups.append(
                (
                    feature,
                    kind,
                    tables[feature],
                    all_lower[part],
                    all_upper[part],
                    all_universal[part],
                )
            )

    if not groups:
        result: Tuple[List[Predicate], bool] = ([], True)
    elif not any(bool(universal.any()) for *_, universal in groups):
        # Φ∀ = ∅: every existentially non-trivial candidate, plus ⋄.
        result = (
            [
                predicate
                for feature, kind, table, *_ in groups
                for predicate in materialize(
                    feature, kind, table, range(table.n_candidates)
                )
            ],
            True,
        )
    else:
        lub = min(
            float(score_upper[universal].min())
            for *_, score_upper, universal in groups
            if universal.any()
        )
        selected: List[Predicate] = []
        for feature, kind, table, score_lower, _, _ in groups:
            positions = np.nonzero(score_lower <= lub + 1e-9)[0]
            selected.extend(materialize(feature, kind, table, positions))
        result = (selected, False)
    plan.store_best_split(cache_key, result)
    return result


def flip_filter_abstract(
    trainset: FlipAbstractTrainingSet,
    predicates: Sequence[Predicate],
    x: Sequence[float],
) -> Optional[FlipAbstractTrainingSet]:
    """``filter#`` under the combined model (same join structure as §4.5)."""
    pieces: List[FlipAbstractTrainingSet] = []
    for predicate in predicates:
        verdict = point_satisfies(predicate, x)
        if verdict.possibly_true:
            pieces.append(trainset.split_down(predicate, True))
        if verdict.possibly_false:
            pieces.append(trainset.split_down(predicate, False))
    pieces = [piece for piece in pieces if piece.size > 0]
    if not pieces:
        return None
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.join(piece)
    return result


# ---------------------------------------------------------------------------
# The abstract learner and verification driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlipVerificationResult:
    """Outcome of certifying a point against the combined threat model."""

    robust: bool
    predicted_class: int
    certified_class: Optional[int]
    class_intervals: Tuple[Interval, ...]
    removals: int
    flips: int


@dataclass
class LabelFlipVerifier:
    """Box-style abstract verifier for the removal + label-flip threat model.

    ``verify(dataset, x, flips, removals=0)`` proves that the classification
    of ``x`` is unchanged for every dataset obtained by removing up to
    ``removals`` elements and flipping up to ``flips`` labels of ``dataset``.

    Since :class:`FlipAbstractTrainingSet` became a first-class citizen of the
    transformer protocol, this class is a thin wrapper over the generic
    :class:`~repro.verify.abstract_learner.BoxAbstractLearner` (the engine
    additionally runs the disjunctive learner on the same abstractions for
    ``domain="disjuncts"/"either"``).
    """

    max_depth: int = 2

    def run_abstract(
        self,
        trainset: FlipAbstractTrainingSet,
        x: Sequence[float],
        *,
        time_budget: Optional[TimeBudget] = None,
    ):
        """Run the generic Box learner on a flip abstraction."""
        # Deferred import: repro.verify's package init pulls in the legacy
        # verifier shim, which imports back into repro.poisoning.
        from repro.verify.abstract_learner import BoxAbstractLearner

        learner = BoxAbstractLearner(max_depth=self.max_depth)
        return learner.run(trainset, x, time_budget=time_budget)

    def run(
        self,
        trainset: FlipAbstractTrainingSet,
        x: Sequence[float],
        *,
        time_budget: Optional[TimeBudget] = None,
    ) -> Tuple[Tuple[Interval, ...], int]:
        result = self.run_abstract(trainset, x, time_budget=time_budget)
        return result.class_intervals, result.iterations

    def verify(
        self, dataset: Dataset, x: Sequence[float], flips: int, removals: int = 0
    ) -> FlipVerificationResult:
        trainset = FlipAbstractTrainingSet.full(dataset, removals, flips)
        predicted = TraceLearner(max_depth=self.max_depth).predict(dataset, x)
        intervals, _ = self.run(trainset, x)
        certified = dominating_component(intervals)
        return FlipVerificationResult(
            robust=certified is not None,
            predicted_class=int(predicted),
            certified_class=certified,
            class_intervals=intervals,
            removals=removals,
            flips=flips,
        )


# ---------------------------------------------------------------------------
# Exact enumeration oracle for the flip model (small instances only)
# ---------------------------------------------------------------------------


def enumerate_label_flips(dataset: Dataset, flips: int) -> Iterator[Dataset]:
    """Yield every dataset obtained from ``dataset`` by flipping up to ``flips`` labels."""
    n_classes = dataset.n_classes
    size = len(dataset)
    for flipped in range(0, min(flips, size) + 1):
        for positions in itertools.combinations(range(size), flipped):
            if not positions:
                yield dataset
                continue
            alternatives = [
                [c for c in range(n_classes) if c != int(dataset.y[p])] for p in positions
            ]
            for choice in itertools.product(*alternatives):
                labels = dataset.y.copy()
                for position, new_label in zip(positions, choice):
                    labels[position] = new_label
                yield dataset.replace(y=labels)


def verify_flips_by_enumeration(
    dataset: Dataset, x: Sequence[float], flips: int, *, max_depth: int = 2
) -> bool:
    """Exactly decide label-flip robustness by exhaustive retraining."""
    learner = TraceLearner(max_depth=max_depth)
    baseline = learner.predict(dataset, x)
    for poisoned in enumerate_label_flips(dataset, flips):
        if learner.predict(poisoned, x) != baseline:
            return False
    return True


def enumerate_composite_poisonings(
    dataset: Dataset, removals: int, flips: int
) -> Iterator[Dataset]:
    """Yield every element of ``Δ_{r,f}(T)``: remove ≤ r rows, then flip ≤ f labels."""
    size = len(dataset)
    base = np.arange(size, dtype=np.int64)
    for removed in range(0, min(removals, size) + 1):
        for drop in itertools.combinations(range(size), removed):
            survivors = dataset.subset(np.delete(base, list(drop)))
            yield from enumerate_label_flips(survivors, flips)


def verify_composite_by_enumeration(
    dataset: Dataset,
    x: Sequence[float],
    removals: int,
    flips: int,
    *,
    max_depth: int = 2,
) -> bool:
    """Exactly decide combined removal+flip robustness by exhaustive retraining."""
    learner = TraceLearner(max_depth=max_depth)
    baseline = learner.predict(dataset, x)
    for poisoned in enumerate_composite_poisonings(dataset, removals, flips):
        if learner.predict(poisoned, x) != baseline:
            return False
    return True
