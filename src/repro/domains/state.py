"""Abstract learner states: the product domain and its disjunctive lifting.

The abstract learner ``DTrace#`` tracks a pair ``(⟨T, n⟩, Ψ)`` — the abstract
training set and the set of possible most-recent split predicates (§4.3).
The disjunctive domain of §5.2 is simply a finite set of such pairs, joined
by set union; it trades memory and time for precision by avoiding the lossy
joins of the base domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Tuple

from repro.domains.predicate_set import AbstractPredicateSet
from repro.domains.trainingset import AbstractTrainingSet


@dataclass(frozen=True)
class AbstractState:
    """One product-domain state ``(⟨T, n⟩, Ψ)`` of the abstract learner.

    ``trainset is None`` encodes the bottom state (no feasible concrete run).
    """

    trainset: Optional[AbstractTrainingSet]
    predicates: AbstractPredicateSet = field(default_factory=AbstractPredicateSet.initial)

    @classmethod
    def initial(cls, trainset: AbstractTrainingSet) -> "AbstractState":
        """The initial state ``(⟨T, n⟩, {⋄})`` of §4.3."""
        return cls(trainset=trainset, predicates=AbstractPredicateSet.initial())

    @classmethod
    def bottom(cls) -> "AbstractState":
        return cls(trainset=None, predicates=AbstractPredicateSet.of(()))

    @property
    def is_bottom(self) -> bool:
        return self.trainset is None

    def with_predicates(self, predicates: AbstractPredicateSet) -> "AbstractState":
        return AbstractState(trainset=self.trainset, predicates=predicates)

    def with_trainset(self, trainset: Optional[AbstractTrainingSet]) -> "AbstractState":
        return AbstractState(trainset=trainset, predicates=self.predicates)

    def estimated_bytes(self) -> int:
        if self.trainset is None:
            return 64
        return self.trainset.estimated_bytes() + 32 * len(self.predicates.predicates)

    def describe(self) -> str:
        if self.trainset is None:
            return "⊥"
        return f"({self.trainset.describe()}, {self.predicates.describe()})"


@dataclass(frozen=True)
class DisjunctiveState:
    """A finite disjunction of product-domain states (§5.2)."""

    disjuncts: Tuple[AbstractState, ...] = ()

    @classmethod
    def initial(cls, trainset: AbstractTrainingSet) -> "DisjunctiveState":
        return cls(disjuncts=(AbstractState.initial(trainset),))

    @classmethod
    def of(cls, states: Iterable[AbstractState]) -> "DisjunctiveState":
        return cls(disjuncts=tuple(s for s in states if not s.is_bottom))

    def join(self, other: "DisjunctiveState") -> "DisjunctiveState":
        """Definition 5.4: the join is the union of the disjunct sets."""
        return DisjunctiveState(disjuncts=self.disjuncts + other.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[AbstractState]:
        return iter(self.disjuncts)

    @property
    def is_bottom(self) -> bool:
        return len(self.disjuncts) == 0

    def estimated_bytes(self) -> int:
        return sum(state.estimated_bytes() for state in self.disjuncts)
