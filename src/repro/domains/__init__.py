"""Abstract domains used by the Antidote-style verifier.

* :mod:`repro.domains.interval` — the standard intervals domain used for
  entropy/score/probability computations (§4.2).
* :mod:`repro.domains.trainingset` — the paper's key novelty: the abstract
  element ``⟨T, n⟩`` whose concretization is the perturbed set ``Δn(T)``.
* :mod:`repro.domains.predicate_set` — abstract sets of split predicates,
  including the null predicate ``⋄`` and symbolic threshold predicates.
* :mod:`repro.domains.state` — product and disjunctive abstract states of the
  abstract learner ``DTrace#``.
"""

from repro.domains.interval import Interval
from repro.domains.predicate_set import AbstractPredicateSet
from repro.domains.state import AbstractState, DisjunctiveState
from repro.domains.trainingset import AbstractTrainingSet

__all__ = [
    "Interval",
    "AbstractPredicateSet",
    "AbstractState",
    "DisjunctiveState",
    "AbstractTrainingSet",
]
