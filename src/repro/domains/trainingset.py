"""The abstract training-set domain ``⟨T, n⟩`` (§4.2 of the paper).

An element ``⟨T, n⟩`` concisely represents the perturbed set
``Δn(T) = { T' ⊆ T : |T \\ T'| ≤ n }`` — every training set an attacker who
contributed up to ``n`` poisoned elements could have started from.  All
abstract transformers only ever manipulate the pair ``(T, n)``; nothing ever
enumerates the (astronomically many) concrete training sets.

Implementation notes
---------------------
``T`` is represented as a sorted array of row indices into a fixed *base*
:class:`~repro.core.dataset.Dataset`.  Every element produced during one
verification run shares the same base dataset, which makes the set-difference
cardinalities needed by the join (Definition 4.1) cheap array operations and
keeps memory proportional to the number of indices rather than copies of the
feature matrix.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.core import split_plan
from repro.core.dataset import Dataset
from repro.core.predicates import (
    Predicate,
    SymbolicThresholdPredicate,
    ThresholdPredicate,
)
from repro.utils.validation import ValidationError, check_index_array


@dataclass(frozen=True)
class AbstractTrainingSet:
    """The abstract element ``⟨T, n⟩`` over a fixed base dataset.

    Attributes
    ----------
    dataset:
        The base dataset that row indices refer to.
    indices:
        Sorted, unique row indices forming ``T``.
    n:
        The poisoning budget (how many elements may be missing).  Always kept
        within ``[0, |T|]``; the constructor clamps it as the transformers do
        (``min(n, |T↓φ|)`` in Equation 1).
    """

    dataset: Dataset
    indices: np.ndarray
    n: int

    def __post_init__(self) -> None:
        indices = check_index_array(self.indices, len(self.dataset), "indices")
        indices.setflags(write=False)
        n = int(self.n)
        if n < 0:
            raise ValidationError(f"poisoning budget must be non-negative, got {n}")
        n = min(n, int(indices.size))
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "n", n)

    # ------------------------------------------------------------- builders
    @classmethod
    def full(cls, dataset: Dataset, n: int) -> "AbstractTrainingSet":
        """The initial abstraction ``α(Δn(T)) = ⟨T, n⟩`` over the whole dataset."""
        return cls(dataset, np.arange(len(dataset), dtype=np.int64), n)

    @classmethod
    def _trusted(
        cls, dataset: Dataset, indices: np.ndarray, n: int
    ) -> "AbstractTrainingSet":
        """Construct without re-validating ``indices``.

        Only for transformer-internal constructions whose index arrays are
        sorted, unique, in-range int64 *by construction* (masked subsets of an
        already-valid element, or ``flatnonzero`` of a base-sized mask).  The
        public constructor's ``check_index_array`` — an ``np.unique`` per
        element — dominated the cold path before this fast path existed.
        """
        obj = object.__new__(cls)
        size = int(indices.size)
        object.__setattr__(obj, "dataset", dataset)
        object.__setattr__(obj, "indices", indices)
        object.__setattr__(obj, "n", n if n <= size else size)
        return obj

    @classmethod
    def from_indices(
        cls, dataset: Dataset, indices: Iterable[int], n: int
    ) -> "AbstractTrainingSet":
        return cls(dataset, np.asarray(list(indices), dtype=np.int64), n)

    # ----------------------------------------------------------------- size
    @property
    def size(self) -> int:
        return int(self.indices.size)

    def __len__(self) -> int:
        return self.size

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.y[self.indices]

    @property
    def features(self) -> np.ndarray:
        return self.dataset.X[self.indices]

    def class_counts(self) -> np.ndarray:
        """Per-class counts of ``T`` itself (the unpoisoned upper counts)."""
        return np.bincount(self.labels, minlength=self.dataset.n_classes).astype(
            np.int64
        )

    def to_dataset(self) -> Dataset:
        """Materialize ``T`` as a standalone :class:`Dataset`."""
        return self.dataset.subset(self.indices)

    def estimated_bytes(self) -> int:
        """Rough memory footprint, used by the disjunctive learner's budget."""
        return int(self.indices.nbytes) + 64

    # -------------------------------------------------------- concretization
    def contains_concrete(self, subset_indices: Iterable[int]) -> bool:
        """Membership test ``T' ∈ γ(⟨T, n⟩)`` for an explicit index subset."""
        subset = check_index_array(subset_indices, len(self.dataset), "subset_indices")
        if not np.all(np.isin(subset, self.indices)):
            return False
        removed = self.size - subset.size
        return removed <= self.n

    def concretizations(self) -> Iterator[np.ndarray]:
        """Enumerate every concrete training set in ``γ(⟨T, n⟩)``.

        Only feasible for tiny instances; used by tests and the naïve
        enumeration baseline.
        """
        base = self.indices
        for removed in range(0, self.n + 1):
            for drop in itertools.combinations(range(base.size), removed):
                keep = np.delete(base, list(drop))
                yield keep

    def num_concretizations(self) -> int:
        """Exact ``|Δn(T)| = Σ_{i<=n} C(|T|, i)`` as a Python integer."""
        return sum(math.comb(self.size, i) for i in range(0, self.n + 1))

    def log10_num_concretizations(self) -> float:
        """``log10 |Δn(T)|`` computed without overflowing to infinity."""
        if self.n <= 0:
            return 0.0
        total = self.num_concretizations()
        digits = str(total)
        if len(digits) <= 15:
            return math.log10(total)
        return math.log10(int(digits[:15])) + (len(digits) - 15)

    def sample_concretization(
        self, rng: np.random.Generator, removals: Optional[int] = None
    ) -> np.ndarray:
        """Sample a random concrete training set (row indices) from ``γ``."""
        if removals is None:
            removals = int(rng.integers(0, self.n + 1))
        removals = min(removals, self.n, self.size)
        if removals == 0:
            return self.indices.copy()
        drop = rng.choice(self.size, size=removals, replace=False)
        return np.delete(self.indices, drop)

    # ----------------------------------------------------- lattice structure
    def _require_same_base(self, other: "AbstractTrainingSet") -> None:
        if self.dataset is not other.dataset:
            raise ValidationError(
                "abstract training sets must share the same base dataset"
            )

    def join(self, other: "AbstractTrainingSet") -> "AbstractTrainingSet":
        """The join of Definition 4.1.

        ``⟨T1, n1⟩ ⊔ ⟨T2, n2⟩ = ⟨T1 ∪ T2, max(|T1 \\ T2| + n2, |T2 \\ T1| + n1)⟩``
        """
        self._require_same_base(other)
        # One boolean mask over the base dataset replaces union1d/intersect1d:
        # membership counting and the (sorted, unique) union are then O(N)
        # with no sorting, which matters because every filter# step joins.
        mask = np.zeros(len(self.dataset), dtype=bool)
        mask[self.indices] = True
        common = int(np.count_nonzero(mask[other.indices]))
        mask[other.indices] = True
        union = np.flatnonzero(mask)
        only_self = self.size - common
        only_other = other.size - common
        budget = max(only_self + other.n, only_other + self.n)
        return AbstractTrainingSet._trusted(self.dataset, union, budget)

    def meet(self, other: "AbstractTrainingSet") -> Optional["AbstractTrainingSet"]:
        """The meet of footnote 4; returns ``None`` for bottom (infeasible)."""
        self._require_same_base(other)
        common = np.intersect1d(self.indices, other.indices, assume_unique=True)
        only_self = self.size - common.size
        only_other = other.size - common.size
        if only_self > self.n or only_other > other.n:
            return None
        budget = min(self.n - only_self, other.n - only_other)
        return AbstractTrainingSet(self.dataset, common, budget)

    def is_leq(self, other: "AbstractTrainingSet") -> bool:
        """The ordering of footnote 4: ``⟨T1,n1⟩ ⊑ ⟨T2,n2⟩``."""
        self._require_same_base(other)
        if not np.all(np.isin(self.indices, other.indices)):
            return False
        only_other = other.size - self.size
        return self.n <= other.n - only_other

    # -------------------------------------------------- abstract transformers
    def split_down(self, predicate: Predicate, branch: bool) -> "AbstractTrainingSet":
        """``⟨T, n⟩↓#φ`` (Equation 1), or its negation when ``branch`` is false.

        Symbolic predicates are dispatched to :meth:`split_down_symbolic`.
        """
        if isinstance(predicate, SymbolicThresholdPredicate):
            return self.split_down_symbolic(predicate, branch)
        if isinstance(predicate, ThresholdPredicate):
            kept = split_plan.plan_for(self.dataset).threshold_split(
                self.indices, predicate.feature, predicate.threshold, branch
            )
        else:
            mask = predicate.evaluate_matrix(self.features)
            if not branch:
                mask = ~mask
            kept = self.indices[mask]
        return AbstractTrainingSet._trusted(self.dataset, kept, self.n)

    def split_down_symbolic(
        self, predicate: SymbolicThresholdPredicate, branch: bool
    ) -> "AbstractTrainingSet":
        """``⟨T, n⟩↓#ρ`` for a symbolic predicate ``x_i <= [a, b)`` (Appendix B).

        The positive branch is the join of filtering with the two concrete
        extremes ``x <= a`` and ``x < b``; the negative branch joins
        ``x >= b`` and ``x > a``.  Because ``a < b``, the tight side is always
        a *subset* of the loose side, so the join degenerates: the row set is
        the loose side and the budget follows from Definition 4.1 with
        ``|tight \\ loose| = 0`` — pure integer arithmetic, no set operations.
        """
        piece, _, _ = self._split_down_symbolic_counts(predicate, branch)
        return piece

    def _split_down_symbolic_counts(
        self, predicate: SymbolicThresholdPredicate, branch: bool
    ) -> Tuple["AbstractTrainingSet", int, int]:
        """Symbolic split plus its ``(tight, loose)`` sizes (for filter traces).

        The budget formula below is exactly the tight⊔loose join the docstring
        of :meth:`split_down_symbolic` describes, specialized to tight ⊆ loose:
        ``n' = min(l, max(min(n, l), (l - t) + min(n, t)))``.
        """
        loose_indices, t, l = split_plan.plan_for(self.dataset).symbolic_split(
            self.indices, predicate.feature, predicate.low, predicate.high, branch
        )
        budget = max(min(self.n, l), (l - t) + min(self.n, t))
        piece = AbstractTrainingSet._trusted(self.dataset, loose_indices, budget)
        return piece, t, l

    def restrict_pure(self, class_index: int) -> Optional["AbstractTrainingSet"]:
        """``pure(⟨T, n⟩, i)`` of §4.7; ``None`` when the restriction is ⊥."""
        mask = self.labels == class_index
        removed = self.size - int(mask.sum())
        if removed > self.n:
            return None
        return AbstractTrainingSet._trusted(
            self.dataset, self.indices[mask], self.n - removed
        )

    def restrict_pure_any(self) -> Optional["AbstractTrainingSet"]:
        """Join of ``pure(⟨T, n⟩, i)`` over all classes; ``None`` when all ⊥."""
        result: Optional[AbstractTrainingSet] = None
        for class_index in range(self.dataset.n_classes):
            restricted = self.restrict_pure(class_index)
            if restricted is None:
                continue
            result = restricted if result is None else result.join(restricted)
        return result

    def can_be_empty(self) -> bool:
        """Whether ``∅ ∈ γ(⟨T, n⟩)`` (equivalently ``n = |T|``, footnote 7)."""
        return self.n >= self.size

    # -------------------------------------------------------------- printing
    def describe(self) -> str:
        return f"<|T|={self.size}, n={self.n}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AbstractTrainingSet(size={self.size}, n={self.n})"


def initial_abstraction(dataset: Dataset, n: int) -> AbstractTrainingSet:
    """Build ``α(Δn(T)) = ⟨T, n⟩`` for a whole training set."""
    return AbstractTrainingSet.full(dataset, n)
