"""The intervals abstract domain.

Antidote uses intervals to overapproximate every real-valued quantity the
learner computes: class probabilities, Gini impurities, and split scores
(§4.2 of the paper).  :class:`Interval` is the scalar element; the module
also provides vectorized bound helpers used by the abstract ``bestSplit``
transformer, which scores thousands of candidate predicates at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class Interval:
    """A closed real interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi + 1e-12:
            raise ValueError(f"invalid interval: lo={self.lo} > hi={self.hi}")
        object.__setattr__(self, "lo", float(self.lo))
        object.__setattr__(self, "hi", float(max(self.lo, self.hi)))

    # ------------------------------------------------------------- builders
    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(float(value), float(value))

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Interval":
        values = list(values)
        if not values:
            raise ValueError("cannot build an interval from an empty collection")
        return cls(min(values), max(values))

    @classmethod
    def unit(cls) -> "Interval":
        return cls(0.0, 1.0)

    @classmethod
    def zero(cls) -> "Interval":
        return cls(0.0, 0.0)

    # ----------------------------------------------------------- predicates
    def contains(self, value: float) -> bool:
        return self.lo - 1e-12 <= value <= self.hi + 1e-12

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def is_subset_of(self, other: "Interval") -> bool:
        return other.lo - 1e-12 <= self.lo and self.hi <= other.hi + 1e-12

    def is_point(self) -> bool:
        return self.lo == self.hi

    def dominates(self, other: "Interval") -> bool:
        """Strict dominance: every value of ``self`` exceeds every value of ``other``."""
        return self.lo > other.hi

    def upper_at_most(self, bound: float) -> bool:
        """Whether *every* concretization is ``<= bound`` (sound "definitely")."""
        return self.hi <= bound

    def lower_at_least(self, bound: float) -> bool:
        """Whether *every* concretization is ``>= bound`` (sound "definitely")."""
        return self.lo >= bound

    # ------------------------------------------------------------ structure
    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return (self.lo + self.hi) / 2.0

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def clamp(self, lo: float, hi: float) -> "Interval":
        """Intersect with ``[lo, hi]``, used to keep probabilities in ``[0, 1]``."""
        return Interval(min(max(self.lo, lo), hi), max(min(self.hi, hi), lo))

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(products), max(products))

    def scale(self, factor: float) -> "Interval":
        if factor >= 0:
            return Interval(self.lo * factor, self.hi * factor)
        return Interval(self.hi * factor, self.lo * factor)

    def divide(self, other: "Interval") -> "Interval":
        """Interval division; the divisor must not contain zero."""
        if other.lo <= 0.0 <= other.hi:
            raise ZeroDivisionError(f"divisor interval {other} contains zero")
        quotients = (
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        )
        return Interval(min(quotients), max(quotients))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo:g}, {self.hi:g}]"


def join_interval_vectors(
    first: Sequence[Interval], second: Sequence[Interval]
) -> Tuple[Interval, ...]:
    """Componentwise join of two equally long vectors of intervals."""
    if len(first) != len(second):
        raise ValueError("interval vectors must have the same length")
    return tuple(a.join(b) for a, b in zip(first, second))


def dominating_component(intervals: Sequence[Interval]) -> Optional[int]:
    """Return the index of the interval dominating all others, if any.

    Following Corollary 4.12, interval ``i`` dominates when its lower bound
    strictly exceeds the upper bound of every other interval.  Returns ``None``
    when no component dominates.
    """
    for i, candidate in enumerate(intervals):
        if all(candidate.lo > other.hi for j, other in enumerate(intervals) if j != i):
            return i
    return None


# --------------------------------------------------------------------------
# Vectorized bound arithmetic.  These helpers operate on parallel arrays of
# lower and upper bounds and implement the same sound rules as the scalar
# Interval operations; the abstract bestSplit transformer uses them to score
# every candidate predicate of a feature in one shot.
# --------------------------------------------------------------------------


def mul_bounds(
    lo1: np.ndarray, hi1: np.ndarray, lo2: np.ndarray, hi2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise interval multiplication on bound arrays."""
    p1 = lo1 * lo2
    p2 = lo1 * hi2
    p3 = hi1 * lo2
    p4 = hi1 * hi2
    lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
    hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
    return lo, hi


def add_bounds(
    lo1: np.ndarray, hi1: np.ndarray, lo2: np.ndarray, hi2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise interval addition on bound arrays."""
    return lo1 + lo2, hi1 + hi2


def complement_bounds(lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise bounds of ``1 - ι`` for interval bound arrays."""
    return 1.0 - hi, 1.0 - lo
