"""Abstract sets of split predicates (§4.2 and Appendix B).

The abstract learner must represent *all* the predicates a concrete run could
have chosen at a node — the set ``Ψ`` in the learner state — including the
special null predicate ``⋄`` ("no non-trivial split exists").  For
real-valued features the member predicates are symbolic
(:class:`~repro.core.predicates.SymbolicThresholdPredicate`), each standing
for an interval of concrete thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Tuple

from repro.core.predicates import Predicate, Trilean, point_satisfies


@dataclass(frozen=True)
class AbstractPredicateSet:
    """A finite set of (possibly symbolic) predicates, optionally with ``⋄``."""

    predicates: Tuple[Predicate, ...] = field(default_factory=tuple)
    includes_null: bool = False

    # ------------------------------------------------------------- builders
    @classmethod
    def initial(cls) -> "AbstractPredicateSet":
        """The initial ``Ψ = {⋄}`` of the abstract learner state."""
        return cls(predicates=(), includes_null=True)

    @classmethod
    def of(
        cls, predicates: Iterable[Predicate], includes_null: bool = False
    ) -> "AbstractPredicateSet":
        return cls(predicates=tuple(predicates), includes_null=includes_null)

    # ----------------------------------------------------------- collection
    def __len__(self) -> int:
        return len(self.predicates) + (1 if self.includes_null else 0)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self.predicates

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def has_concrete_choices(self) -> bool:
        return bool(self.predicates)

    # -------------------------------------------------------------- lattice
    def join(self, other: "AbstractPredicateSet") -> "AbstractPredicateSet":
        """Set union (the domain's join, §4.2)."""
        merged = list(self.predicates)
        seen = set(self.predicates)
        for predicate in other.predicates:
            if predicate not in seen:
                merged.append(predicate)
                seen.add(predicate)
        return AbstractPredicateSet(
            predicates=tuple(merged),
            includes_null=self.includes_null or other.includes_null,
        )

    def without_null(self) -> "AbstractPredicateSet":
        """Restrict to the ``φ ≠ ⋄`` branch of the learner's conditional."""
        return AbstractPredicateSet(predicates=self.predicates, includes_null=False)

    def with_null(self) -> "AbstractPredicateSet":
        return AbstractPredicateSet(predicates=self.predicates, includes_null=True)

    # -------------------------------------------------------- point filtering
    def partition_for_point(
        self, x: Sequence[float]
    ) -> Tuple[Tuple[Predicate, ...], Tuple[Predicate, ...]]:
        """Split predicates by how the test point evaluates them.

        Returns ``(Ψ_x, Ψ_¬x)``: the predicates that ``x`` possibly satisfies
        and the ones it possibly falsifies.  A symbolic predicate evaluating
        to *maybe* appears in **both** groups (the three-valued semantics of
        ``filter#_R`` in Appendix B); concrete predicates appear in exactly
        one.
        """
        satisfied = []
        falsified = []
        for predicate in self.predicates:
            verdict = point_satisfies(predicate, x)
            if verdict.possibly_true:
                satisfied.append(predicate)
            if verdict.possibly_false:
                falsified.append(predicate)
        return tuple(satisfied), tuple(falsified)

    def maybe_predicates(self, x: Sequence[float]) -> Tuple[Predicate, ...]:
        """The predicates whose evaluation on ``x`` is three-valued *maybe*."""
        return tuple(
            predicate
            for predicate in self.predicates
            if point_satisfies(predicate, x) is Trilean.MAYBE
        )

    # -------------------------------------------------------------- printing
    def describe(self, feature_names: Sequence[str] = ()) -> str:
        parts = [predicate.describe(feature_names) for predicate in self.predicates]
        if self.includes_null:
            parts.append("<>")
        return "{" + ", ".join(parts) + "}"
