"""Concrete decision-tree substrate.

This subpackage implements everything the paper's *concrete* semantics needs:

* :mod:`repro.core.dataset` — labelled training sets with typed features.
* :mod:`repro.core.predicates` — the predicate language used at tree splits,
  including the symbolic three-valued predicates of Appendix B.
* :mod:`repro.core.impurity` — Gini impurity and class-probability vectors
  (``ent`` and ``cprob`` in Figure 5 of the paper).
* :mod:`repro.core.splitter` — candidate-predicate enumeration and the
  ``bestSplit`` greedy criterion.
* :mod:`repro.core.tree` — decision trees and their trace-based view (§3.2).
* :mod:`repro.core.learner` — a CART-style learner building full trees.
* :mod:`repro.core.trace_learner` — the trace-based learner ``DTrace``
  (Figure 4) that only builds the root-to-leaf trace traversed by one input.
"""

from repro.core.dataset import Dataset, FeatureKind
from repro.core.impurity import class_probabilities, gini_impurity, shannon_entropy
from repro.core.learner import DecisionTreeLearner
from repro.core.predicates import (
    Predicate,
    SymbolicThresholdPredicate,
    ThresholdPredicate,
    Trilean,
)
from repro.core.splitter import SplitChoice, best_split, candidate_predicates
from repro.core.trace_learner import TraceLearner, TraceResult
from repro.core.tree import DecisionTree, Trace, TreeNode

__all__ = [
    "Dataset",
    "FeatureKind",
    "class_probabilities",
    "gini_impurity",
    "shannon_entropy",
    "DecisionTreeLearner",
    "Predicate",
    "ThresholdPredicate",
    "SymbolicThresholdPredicate",
    "Trilean",
    "SplitChoice",
    "best_split",
    "candidate_predicates",
    "TraceLearner",
    "TraceResult",
    "DecisionTree",
    "Trace",
    "TreeNode",
]
