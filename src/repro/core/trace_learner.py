"""The trace-based decision-tree learner ``DTrace`` (Figure 4 of the paper).

``DTrace(T, x)`` builds only the root-to-leaf trace that the test input ``x``
traverses in the tree a conventional learner would construct on ``T``: at
each step it selects the best split of the *current* training subset, keeps
only the side of the split that ``x`` falls on (``filter``), and repeats up to
``d`` times.  The classification is the majority class of the final subset.

``DTrace`` is what Antidote abstractly interprets; this concrete version is
both the learner whose robustness we certify and the oracle against which the
abstract learner's soundness is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.impurity import gini_impurity, shannon_entropy
from repro.core.predicates import Predicate
from repro.core.splitter import best_split
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TraceResult:
    """The final state of a ``DTrace`` run.

    Attributes
    ----------
    prediction:
        The class returned by the learner (argmax of ``class_probabilities``,
        ties broken towards the lowest class index).
    class_counts / class_probabilities:
        Statistics of the final filtered training subset ``T_r``.
    decisions:
        The sequence ``σ`` of (predicate, branch) pairs along the trace.
    stopped_reason:
        Why the loop ended: ``"pure"`` (zero impurity), ``"no_split"``
        (``bestSplit`` returned ``⋄``), or ``"depth"`` (ran ``d`` iterations).
    """

    prediction: int
    class_counts: Tuple[int, ...]
    class_probabilities: Tuple[float, ...]
    decisions: Tuple[Tuple[Predicate, bool], ...]
    stopped_reason: str

    @property
    def depth(self) -> int:
        return len(self.decisions)


@dataclass
class TraceLearner:
    """Input-directed decision-tree learning (``DTrace`` / ``DTraceR``).

    The parameters mirror :class:`repro.core.learner.DecisionTreeLearner`;
    with the same parameters the trace learner's classification of ``x``
    coincides with the full tree's classification of ``x``.
    """

    max_depth: int = 2
    impurity: str = "gini"
    predicate_pool: Optional[Sequence[Predicate]] = None

    def __post_init__(self) -> None:
        self.max_depth = check_positive_int(self.max_depth, "max_depth", allow_zero=True)
        if self.impurity not in ("gini", "entropy"):
            raise ValueError(
                f"impurity must be 'gini' or 'entropy', got {self.impurity!r}"
            )

    def _impurity(self, counts: np.ndarray) -> float:
        if self.impurity == "gini":
            return gini_impurity(counts)
        return shannon_entropy(counts)

    def run(self, dataset: Dataset, x: Sequence[float]) -> TraceResult:
        """Run ``DTrace(T, x)`` and return the final trace state."""
        if len(dataset) == 0:
            raise ValueError("DTrace requires a non-empty training set")
        current = dataset
        decisions: List[Tuple[Predicate, bool]] = []
        stopped_reason = "depth"
        for _ in range(self.max_depth):
            counts = current.class_counts()
            if self._impurity(counts) == 0.0:
                stopped_reason = "pure"
                break
            choice = best_split(
                current, impurity=self.impurity, predicate_pool=self.predicate_pool
            )
            if choice is None:
                stopped_reason = "no_split"
                break
            branch = bool(choice.predicate.evaluate(x))
            mask = choice.predicate.evaluate_matrix(current.X)
            current = current.subset_mask(mask if branch else ~mask)
            decisions.append((choice.predicate, branch))
        counts = current.class_counts()
        probabilities = current.class_probabilities()
        return TraceResult(
            prediction=int(np.argmax(probabilities)),
            class_counts=tuple(int(c) for c in counts),
            class_probabilities=tuple(float(p) for p in probabilities),
            decisions=tuple(decisions),
            stopped_reason=stopped_reason,
        )

    def predict(self, dataset: Dataset, x: Sequence[float]) -> int:
        """Convenience wrapper returning only the predicted class."""
        return self.run(dataset, x).prediction


def learn_trace(
    dataset: Dataset,
    x: Sequence[float],
    *,
    max_depth: int = 2,
    impurity: str = "gini",
    predicate_pool: Optional[Sequence[Predicate]] = None,
) -> TraceResult:
    """Functional shorthand for ``TraceLearner(...).run(dataset, x)``."""
    learner = TraceLearner(
        max_depth=max_depth, impurity=impurity, predicate_pool=predicate_pool
    )
    return learner.run(dataset, x)
