"""Per-dataset split-table plans: presorted feature orders, per-node tables.

``feature_split_table`` re-argsorts each feature column at every tree node of
every probe.  A :class:`SplitTablePlan` amortizes that work per *dataset*: one
global stable sort per feature when the plan is built, after which the table
for any node (an index subset along a predicate path) is derived by filtering
the presorted order with a boolean mask — O(N) per feature instead of
O(N log N), and byte-identical to the direct construction because a stable
global sort restricted to a subset *is* the stable sort of that subset
(node index arrays are ascending, and candidate boundaries only sit between
distinct values anyway).

Two properties make the plan widely shareable (ISSUE 8, layer 2):

* ``split_down`` keeps indices that depend only on the predicate path, never
  on the poisoning budget — so node tables are reused verbatim across the
  budget probes of a sweep or Pareto staircase;
* tables depend only on ``(X, y, indices)``, not on the threat family — so
  the removal, flip, and composite transformers over the same dataset all hit
  the same cache entries.

Plans are memoized per dataset *instance* as a hidden attribute on the frozen
dataclass (the ``fingerprint_dataset`` trick), so the hot-path lookup is one
dict probe; ``clear_plans`` strips them for cold benchmarks.  Cache
effectiveness is observable as ``split_table_cache_total{result}``.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.predicates import SymbolicThresholdPredicate, ThresholdPredicate
from repro.core.splitter import FeatureSplitTable, table_from_sorted
from repro.telemetry import metrics, profiling

#: Per-plan bound on distinct node tables kept alive (LRU evicted beyond it).
NODE_TABLE_CACHE_SIZE = 256

#: Per-plan bound on cached split-down index results.  Entries are small (one
#: child index array each) but numerous: the disjunctive learner splits every
#: live disjunct by every candidate predicate, so a single exhausting probe
#: can produce tens of thousands of distinct (indices, predicate, branch)
#: keys — the cap must comfortably hold one probe's worth.
SPLIT_CACHE_SIZE = 32768

#: Per-plan bound on memoized ``bestSplit#`` outcomes (keyed by node + budget).
BEST_SPLIT_CACHE_SIZE = 4096

_SPLIT_TABLE_CACHE = metrics.counter(
    "split_table_cache_total",
    "Per-node split-table derivations served from a SplitTablePlan cache "
    "(result=hit) versus built by filtering the presorted order (result=miss).",
    labelnames=("result",),
)


class NodeTables:
    """Per-feature split tables of one node, plus stacked score inputs.

    ``stacked`` lazily concatenates the threshold candidates of *every*
    feature so the abstract scorers can bound all of a node's candidates in
    one vectorized kernel call instead of one per feature;
    ``offsets[f]:offsets[f+1]`` recovers feature ``f``'s slice in candidate
    order.  Callers that score categorical features differently (the removal
    transformer's equality-pool path) simply ignore those slices.
    """

    __slots__ = ("tables", "_stacked")

    def __init__(self, tables: Tuple[FeatureSplitTable, ...]) -> None:
        self.tables = tables
        self._stacked: Optional[StackedCandidates] = None

    def __getitem__(self, feature: int) -> FeatureSplitTable:
        return self.tables[feature]

    def __len__(self) -> int:
        return len(self.tables)

    @property
    def stacked(self) -> Optional["StackedCandidates"]:
        """Concatenated threshold candidates, or ``None`` when there are none."""
        stacked = self._stacked
        if stacked is None:
            counts = [table.n_candidates for table in self.tables]
            offsets = np.zeros(len(self.tables) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            total = int(offsets[-1])
            if total == 0:
                return None
            pieces = [table for table in self.tables if table.n_candidates]
            stacked = StackedCandidates(
                offsets=offsets,
                left_sizes=np.concatenate([p.left_sizes for p in pieces]),
                left_class_counts=np.concatenate(
                    [p.left_class_counts for p in pieces]
                ),
                total_size=pieces[0].total_size,
                total_class_counts=pieces[0].total_class_counts,
            )
            self._stacked = stacked
        return stacked


@dataclass(frozen=True)
class StackedCandidates:
    """All threshold candidates of one node, concatenated in feature order."""

    offsets: np.ndarray  # (n_features + 1,) candidate-range starts per feature
    left_sizes: np.ndarray  # (c,)
    left_class_counts: np.ndarray  # (c, k)
    total_size: int
    total_class_counts: np.ndarray  # (k,)

    @property
    def right_sizes(self) -> np.ndarray:
        return self.total_size - self.left_sizes

    @property
    def right_class_counts(self) -> np.ndarray:
        return self.total_class_counts[np.newaxis, :] - self.left_class_counts

    def feature_slice(self, feature: int) -> slice:
        return slice(int(self.offsets[feature]), int(self.offsets[feature + 1]))


class SplitTablePlan:
    """Presorted per-feature orders for one dataset plus node-level caches.

    The per-node caches are plain dicts read and written without locks: every
    individual dict operation is atomic under the GIL, entries are immutable
    once stored, and a lost race merely recomputes a value.  Eviction empties
    a cache wholesale when it overflows its cap — refilling is cheap relative
    to tracking recency on the hot path.
    """

    __slots__ = (
        "dataset",
        "_sorted_values",
        "_sorted_labels",
        "_orders",
        "_columns",
        "_node_cache",
        "_split_cache",
        "_best_split_cache",
        "__weakref__",
    )

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        X = dataset.X
        y = dataset.y
        orders = []
        sorted_values = []
        sorted_labels = []
        columns = []
        for feature in range(X.shape[1]):
            column = np.ascontiguousarray(X[:, feature])
            columns.append(column)
            order = np.argsort(column, kind="stable")
            orders.append(order)
            sorted_values.append(column[order])
            sorted_labels.append(y[order])
        self._orders: Tuple[np.ndarray, ...] = tuple(orders)
        self._sorted_values: Tuple[np.ndarray, ...] = tuple(sorted_values)
        self._sorted_labels: Tuple[np.ndarray, ...] = tuple(sorted_labels)
        self._columns: Tuple[np.ndarray, ...] = tuple(columns)
        self._node_cache: Dict[bytes, NodeTables] = {}
        self._split_cache: Dict[tuple, tuple] = {}
        self._best_split_cache: Dict[tuple, object] = {}

    def node_tables(self, indices: np.ndarray) -> NodeTables:
        """All per-feature split tables of the node selecting ``indices``.

        ``indices`` must be the sorted/unique index array of an abstract
        element over this plan's dataset (the invariant every
        ``AbstractTrainingSet`` / ``FlipAbstractTrainingSet`` maintains).
        """
        key = indices.tobytes()
        cached = self._node_cache.get(key)
        if cached is not None:
            _SPLIT_TABLE_CACHE.inc(result="hit")
            return cached
        _SPLIT_TABLE_CACHE.inc(result="miss")
        with profiling.phase("split_table"):
            tables = NodeTables(self._build_node_tables(indices))
        if len(self._node_cache) >= NODE_TABLE_CACHE_SIZE:
            self._node_cache.clear()
        self._node_cache[key] = tables
        return tables

    def _build_node_tables(
        self, indices: np.ndarray
    ) -> Tuple[FeatureSplitTable, ...]:
        n_classes = self.dataset.n_classes
        mask = np.zeros(len(self.dataset), dtype=bool)
        mask[indices] = True
        tables = []
        for feature, order in enumerate(self._orders):
            keep = mask[order]
            tables.append(
                table_from_sorted(
                    self._sorted_values[feature][keep],
                    self._sorted_labels[feature][keep],
                    feature,
                    n_classes,
                )
            )
        return tuple(tables)

    # ------------------------------------------------------ split-down cache
    # ``split_down`` keeps the subset of ``indices`` selected by a predicate
    # branch — a function of (indices, predicate, branch) only, never of the
    # poisoning budgets.  Budget probes and the disjunctive learner's many
    # same-rows/different-budget disjuncts therefore share these results
    # verbatim; the caller re-derives budgets from the returned counts.

    def symbolic_split(
        self, indices: np.ndarray, feature: int, low: float, high: float, branch: bool
    ) -> Tuple[np.ndarray, int, int]:
        """Rows surviving ``x_f <= [low, high)`` (or its negation).

        Returns ``(loose_indices, tight_count, loose_count)`` where the tight
        side (``x <= low`` resp. ``x >= high``) is a subset of the loose side
        (``x < high`` resp. ``x > low``) because ``low < high``.
        """
        key = (indices.tobytes(), feature, low, high, branch)
        cached = self._split_cache.get(key)
        if cached is not None:
            return cached
        values = self._columns[feature][indices]
        if branch:
            tight = values <= low
            loose = values < high
        else:
            tight = values >= high
            loose = values > low
        result = (
            indices[loose],
            int(np.count_nonzero(tight)),
            int(np.count_nonzero(loose)),
        )
        result[0].setflags(write=False)
        if len(self._split_cache) >= SPLIT_CACHE_SIZE:
            self._split_cache.clear()
        self._split_cache[key] = result
        return result

    def threshold_split(
        self, indices: np.ndarray, feature: int, threshold: float, branch: bool
    ) -> np.ndarray:
        """Rows surviving ``x_f <= threshold`` (or its negation)."""
        key = (indices.tobytes(), feature, threshold, branch)
        cached = self._split_cache.get(key)
        if cached is not None:
            return cached[0]
        mask = self._columns[feature][indices] <= threshold
        if not branch:
            mask = ~mask
        kept = indices[mask]
        kept.setflags(write=False)
        if len(self._split_cache) >= SPLIT_CACHE_SIZE:
            self._split_cache.clear()
        self._split_cache[key] = (kept,)
        return kept

    # ---------------------------------------------------- bestSplit# memoing
    # The abstract predicate sets returned by bestSplit# are immutable and
    # fully determined by (node indices, budgets, cprob method); the Box and
    # disjunctive learners re-pose the same query for same-rows disjuncts and
    # across ladder rungs of one certification.

    def cached_best_split(self, key: tuple) -> Optional[object]:
        return self._best_split_cache.get(key)

    def store_best_split(self, key: tuple, value: object) -> None:
        if len(self._best_split_cache) >= BEST_SPLIT_CACHE_SIZE:
            self._best_split_cache.clear()
        self._best_split_cache[key] = value


# The plan of a dataset is memoized as a (non-field) attribute on the frozen
# dataclass instance itself — the same trick ``fingerprint_dataset`` uses.
# An attribute probe is an order of magnitude cheaper than a locked registry
# lookup, and ``plan_for`` sits on the hottest path there is (every
# ``split_down`` of every disjunct).  ``_PLANNED`` weakly tracks the datasets
# carrying a plan so ``clear_plans`` can strip them for cold benchmarks.

_PLAN_ATTR = "_split_plan"
_PLANNED: Dict[int, "weakref.ref[Dataset]"] = {}
_PLANS_LOCK = threading.Lock()


def plan_for(dataset: Dataset) -> SplitTablePlan:
    """The (lazily built) :class:`SplitTablePlan` of ``dataset``."""
    plan = dataset.__dict__.get(_PLAN_ATTR)
    if plan is not None:
        return plan
    with _PLANS_LOCK:
        plan = dataset.__dict__.get(_PLAN_ATTR)
        if plan is None:
            plan = SplitTablePlan(dataset)
            object.__setattr__(dataset, _PLAN_ATTR, plan)
            key = id(dataset)
            _PLANNED[key] = weakref.ref(
                dataset, lambda _ref, _key=key: _PLANNED.pop(_key, None)
            )
    return plan


def node_tables(dataset: Dataset, indices: np.ndarray) -> NodeTables:
    """Convenience: ``plan_for(dataset).node_tables(indices)``."""
    return plan_for(dataset).node_tables(indices)


def clear_plans() -> None:
    """Drop every live plan (used by cold-path benchmarks)."""
    with _PLANS_LOCK:
        for ref in list(_PLANNED.values()):
            dataset = ref()
            if dataset is not None:
                dataset.__dict__.pop(_PLAN_ATTR, None)
        _PLANNED.clear()
    _SYMBOLIC_PREDICATES.clear()
    _THRESHOLD_PREDICATES.clear()


# --------------------------------------------------------------------------
# Predicate interning
#
# Threshold predicates are pure value objects; the abstract learners
# re-materialize the same (feature, bounds) predicates at every node of every
# probe.  Interning them cuts the allocation churn and makes the identity
# fast path of dict lookups (per-run point_satisfies memos, predicate-set
# comparisons) effective.  Keys are value-based, so sharing across datasets
# is sound.

PREDICATE_INTERN_SIZE = 65536

_SYMBOLIC_PREDICATES: Dict[tuple, SymbolicThresholdPredicate] = {}
_THRESHOLD_PREDICATES: Dict[tuple, ThresholdPredicate] = {}


def symbolic_predicate(feature: int, low: float, high: float) -> SymbolicThresholdPredicate:
    """Interned ``x_feature <= [low, high)`` predicate."""
    key = (feature, low, high)
    predicate = _SYMBOLIC_PREDICATES.get(key)
    if predicate is None:
        predicate = SymbolicThresholdPredicate(feature, low, high)
        if len(_SYMBOLIC_PREDICATES) >= PREDICATE_INTERN_SIZE:
            _SYMBOLIC_PREDICATES.clear()
        _SYMBOLIC_PREDICATES[key] = predicate
    return predicate


def threshold_predicate(feature: int, threshold: float) -> ThresholdPredicate:
    """Interned ``x_feature <= threshold`` predicate."""
    key = (feature, threshold)
    predicate = _THRESHOLD_PREDICATES.get(key)
    if predicate is None:
        predicate = ThresholdPredicate(feature, threshold)
        if len(_THRESHOLD_PREDICATES) >= PREDICATE_INTERN_SIZE:
            _THRESHOLD_PREDICATES.clear()
        _THRESHOLD_PREDICATES[key] = predicate
    return predicate
