"""Impurity measures and class-probability statistics (Figure 5 of the paper).

The paper's learner measures split quality with Gini impurity
(``ent(T) = Σ_i p_i (1 - p_i)``) computed from the class-probability vector
``cprob(T)``.  We also provide Shannon entropy as an alternative impurity for
the C4.5-style extension, although all reproduction experiments use Gini as
in the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def class_probabilities(counts: Sequence[float]) -> np.ndarray:
    """Return ``cprob`` from per-class counts; uniform when the set is empty.

    The concrete ``cprob`` of Figure 5 is undefined for an empty training set;
    following the paper's corner-case treatment we return the uniform vector,
    which is what the abstract transformer's ``[0, 1]`` intervals collapse to
    in the concrete world.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return np.full(counts.shape, 1.0 / max(1, counts.size))
    return counts / total


def gini_impurity(counts: Sequence[float]) -> float:
    """Gini impurity ``Σ_i p_i (1 - p_i)`` of a class-count vector.

    Returns 0 for an empty count vector (a pure/empty node).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts / total
    return float(np.sum(probabilities * (1.0 - probabilities)))


def shannon_entropy(counts: Sequence[float]) -> float:
    """Shannon entropy (in bits) of a class-count vector; 0 when empty."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts / total
    nonzero = probabilities[probabilities > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


def gini_from_labels(labels: Sequence[int], n_classes: int) -> float:
    """Convenience wrapper computing Gini impurity directly from labels."""
    counts = np.bincount(np.asarray(labels, dtype=np.int64), minlength=n_classes)
    return gini_impurity(counts)


def split_score(
    left_counts: Sequence[float],
    right_counts: Sequence[float],
    impurity: str = "gini",
) -> float:
    """The paper's split score ``|T↓φ|·ent(T↓φ) + |T↓¬φ|·ent(T↓¬φ)``.

    Lower is better.  ``impurity`` selects Gini (paper default) or Shannon
    entropy.
    """
    left_counts = np.asarray(left_counts, dtype=np.float64)
    right_counts = np.asarray(right_counts, dtype=np.float64)
    if impurity == "gini":
        measure = gini_impurity
    elif impurity == "entropy":
        measure = shannon_entropy
    else:
        raise ValueError(f"unknown impurity {impurity!r}; expected 'gini' or 'entropy'")
    return float(
        left_counts.sum() * measure(left_counts)
        + right_counts.sum() * measure(right_counts)
    )
