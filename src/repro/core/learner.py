"""A CART-style decision-tree learner building full trees.

The paper's verification target is the *trace-based* learner ``DTrace``
(:mod:`repro.core.trace_learner`), but the conventional full-tree learner is
needed as a substrate for three reasons: it produces the accuracies of
Table 1, it provides the reference semantics the trace learner must agree
with (the equivalence is property-tested), and it is what a downstream user
would deploy after certification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.impurity import gini_impurity, shannon_entropy
from repro.core.predicates import Predicate
from repro.core.splitter import best_split
from repro.core.tree import DecisionTree, TreeNode
from repro.utils.validation import check_positive_int


@dataclass
class DecisionTreeLearner:
    """Greedy top-down decision-tree learning with Gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum number of splits along any root-to-leaf path (the ``d`` of
        Figure 4); the paper evaluates depths 1 through 4.
    impurity:
        ``"gini"`` (paper default, the CART criterion) or ``"entropy"``.
    min_samples_split:
        Nodes with fewer elements become leaves; the paper's formulation uses
        2 (any non-trivial split is allowed).
    predicate_pool:
        Optional fixed predicate set Φ.  When omitted, candidate predicates
        are enumerated dynamically from the data at each node (``DTraceR``
        semantics for real features; the single ``x <= 0.5`` predicate for
        boolean features).
    """

    max_depth: int = 2
    impurity: str = "gini"
    min_samples_split: int = 2
    predicate_pool: Optional[Sequence[Predicate]] = None

    def __post_init__(self) -> None:
        self.max_depth = check_positive_int(self.max_depth, "max_depth", allow_zero=True)
        self.min_samples_split = check_positive_int(
            self.min_samples_split, "min_samples_split"
        )
        if self.impurity not in ("gini", "entropy"):
            raise ValueError(
                f"impurity must be 'gini' or 'entropy', got {self.impurity!r}"
            )

    # ------------------------------------------------------------------ fit
    def fit(self, dataset: Dataset) -> DecisionTree:
        """Learn a decision tree from ``dataset``."""
        if len(dataset) == 0:
            raise ValueError("cannot learn a decision tree from an empty dataset")
        root = self._build(dataset, depth=0)
        return DecisionTree(
            root=root,
            n_classes=dataset.n_classes,
            feature_names=dataset.feature_names,
            class_names=dataset.class_names,
        )

    def _impurity(self, counts: np.ndarray) -> float:
        if self.impurity == "gini":
            return gini_impurity(counts)
        return shannon_entropy(counts)

    def _build(self, dataset: Dataset, depth: int) -> TreeNode:
        counts = dataset.class_counts()
        node = TreeNode(class_counts=counts)
        if (
            depth >= self.max_depth
            or len(dataset) < self.min_samples_split
            or self._impurity(counts) == 0.0
        ):
            return node
        choice = best_split(
            dataset, impurity=self.impurity, predicate_pool=self.predicate_pool
        )
        if choice is None:
            return node
        mask = choice.predicate.evaluate_matrix(dataset.X)
        node.predicate = choice.predicate
        node.left = self._build(dataset.subset_mask(mask), depth + 1)
        node.right = self._build(dataset.subset_mask(~mask), depth + 1)
        return node


def evaluate_accuracy(tree: DecisionTree, X: np.ndarray, y: np.ndarray) -> float:
    """Fraction of rows of ``X`` whose prediction matches ``y``."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=np.int64)
    if X.shape[0] == 0:
        return 0.0
    predictions = tree.predict_batch(X)
    return float(np.mean(predictions == y))
