"""Labelled training sets with typed features.

A :class:`Dataset` is the concrete object the paper calls ``T ⊆ X × Y``: a
feature matrix together with one class label per row.  Features are typed
(:class:`FeatureKind`) because the learner enumerates candidate predicates
differently for boolean and real-valued features (§5.1 of the paper), which
in turn determines whether the *abstract* learner needs symbolic predicates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ValidationError, check_index_array


class FeatureKind(enum.Enum):
    """The type of a feature column.

    ``BOOLEAN`` features take values in ``{0, 1}`` and induce a single
    candidate predicate per feature (``x_i <= 0.5``).  ``REAL`` features
    induce data-dependent threshold predicates at midpoints between adjacent
    observed values; the abstract learner additionally widens them into
    symbolic predicates (Appendix B).  ``CATEGORICAL`` features are integer
    codes compared with equality predicates; they behave like a small set of
    boolean indicator predicates.
    """

    REAL = "real"
    BOOLEAN = "boolean"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Dataset:
    """An immutable labelled dataset.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n_samples, n_features)``; always stored as
        ``float64`` (boolean and categorical features are stored as their
        numeric codes).
    y:
        Integer class labels of shape ``(n_samples,)`` with values in
        ``[0, n_classes)``.
    n_classes:
        Number of classes ``k``; defaults to ``max(y) + 1``.
    feature_kinds:
        One :class:`FeatureKind` per column; defaults to all ``REAL``.
    feature_names / class_names:
        Optional human-readable names used in reports and tree printouts.
    """

    X: np.ndarray
    y: np.ndarray
    n_classes: int = 0
    feature_kinds: Tuple[FeatureKind, ...] = field(default=())
    feature_names: Tuple[str, ...] = field(default=())
    class_names: Tuple[str, ...] = field(default=())
    name: str = "dataset"

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.int64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1:
            raise ValidationError(f"y must be 1-D, got shape {y.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValidationError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
            )
        n_classes = self.n_classes
        if n_classes <= 0:
            n_classes = int(y.max()) + 1 if y.size else 1
        if y.size and (y.min() < 0 or y.max() >= n_classes):
            raise ValidationError(
                f"labels must lie in [0, {n_classes}), got range "
                f"[{y.min()}, {y.max()}]"
            )
        kinds = self.feature_kinds
        if not kinds:
            kinds = tuple(FeatureKind.REAL for _ in range(X.shape[1]))
        if len(kinds) != X.shape[1]:
            raise ValidationError(
                f"feature_kinds has {len(kinds)} entries but X has "
                f"{X.shape[1]} columns"
            )
        feature_names = self.feature_names
        if not feature_names:
            feature_names = tuple(f"x{i}" for i in range(X.shape[1]))
        if len(feature_names) != X.shape[1]:
            raise ValidationError("feature_names length must match the number of columns")
        class_names = self.class_names
        if not class_names:
            class_names = tuple(f"class_{i}" for i in range(n_classes))
        if len(class_names) != n_classes:
            raise ValidationError("class_names length must match n_classes")
        X.setflags(write=False)
        y.setflags(write=False)
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "n_classes", int(n_classes))
        object.__setattr__(self, "feature_kinds", tuple(kinds))
        object.__setattr__(self, "feature_names", tuple(feature_names))
        object.__setattr__(self, "class_names", tuple(class_names))

    # ------------------------------------------------------------------ size
    def __len__(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_samples(self) -> int:
        return len(self)

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    # -------------------------------------------------------------- contents
    def class_counts(self) -> np.ndarray:
        """Return the per-class element counts (length ``n_classes``)."""
        return np.bincount(self.y, minlength=self.n_classes).astype(np.int64)

    def class_probabilities(self) -> np.ndarray:
        """Return ``cprob(T)`` (Figure 5); uniform over classes when empty."""
        counts = self.class_counts()
        total = counts.sum()
        if total == 0:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        return counts / float(total)

    def majority_class(self) -> int:
        """Return the majority class, breaking ties towards the lowest index."""
        return int(np.argmax(self.class_counts()))

    def feature_values(self, feature: int) -> np.ndarray:
        """Return the sorted distinct values observed for ``feature``."""
        return np.unique(self.X[:, feature])

    # ------------------------------------------------------------ subsetting
    def subset(self, indices: Iterable[int]) -> "Dataset":
        """Return the dataset restricted to ``indices`` (rows are re-packed)."""
        idx = check_index_array(indices, len(self), "indices")
        return self.replace(X=self.X[idx], y=self.y[idx])

    def subset_mask(self, mask: np.ndarray) -> "Dataset":
        """Return the dataset restricted to rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValidationError(
                f"mask must have shape ({len(self)},), got {mask.shape}"
            )
        return self.replace(X=self.X[mask], y=self.y[mask])

    def remove(self, indices: Iterable[int]) -> "Dataset":
        """Return the dataset with the given rows removed (poisoning removal)."""
        idx = check_index_array(indices, len(self), "indices")
        keep = np.setdiff1d(np.arange(len(self), dtype=np.int64), idx)
        return self.subset(keep)

    def append(self, X_new: np.ndarray, y_new: np.ndarray) -> "Dataset":
        """Return a dataset with extra rows appended (poisoning injection)."""
        X_new = np.asarray(X_new, dtype=np.float64)
        y_new = np.asarray(y_new, dtype=np.int64)
        if X_new.ndim == 1:
            X_new = X_new.reshape(1, -1)
            y_new = y_new.reshape(1)
        if X_new.shape[1] != self.n_features:
            raise ValidationError(
                f"appended rows have {X_new.shape[1]} features, expected {self.n_features}"
            )
        return self.replace(
            X=np.vstack([self.X, X_new]), y=np.concatenate([self.y, y_new])
        )

    def replace(self, **changes: object) -> "Dataset":
        """Return a copy of the dataset with the given fields replaced."""
        fields = {
            "X": self.X,
            "y": self.y,
            "n_classes": self.n_classes,
            "feature_kinds": self.feature_kinds,
            "feature_names": self.feature_names,
            "class_names": self.class_names,
            "name": self.name,
        }
        fields.update(changes)
        return Dataset(**fields)  # type: ignore[arg-type]

    # ------------------------------------------------------------- factories
    @classmethod
    def from_arrays(
        cls,
        X: np.ndarray,
        y: np.ndarray,
        *,
        feature_kinds: Optional[Sequence[FeatureKind]] = None,
        name: str = "dataset",
        class_names: Sequence[str] = (),
        feature_names: Sequence[str] = (),
        n_classes: int = 0,
    ) -> "Dataset":
        """Build a dataset from raw arrays, inferring boolean feature kinds.

        A column whose observed values are all in ``{0, 1}`` is inferred to be
        ``BOOLEAN`` unless ``feature_kinds`` is given explicitly.
        """
        X = np.asarray(X, dtype=np.float64)
        if feature_kinds is None:
            kinds = []
            for j in range(X.shape[1]):
                column = X[:, j]
                if np.all(np.isin(column, (0.0, 1.0))):
                    kinds.append(FeatureKind.BOOLEAN)
                else:
                    kinds.append(FeatureKind.REAL)
            feature_kinds = kinds
        return cls(
            X=X,
            y=np.asarray(y, dtype=np.int64),
            n_classes=n_classes,
            feature_kinds=tuple(feature_kinds),
            feature_names=tuple(feature_names),
            class_names=tuple(class_names),
            name=name,
        )

    # -------------------------------------------------------------- printing
    def summary(self) -> str:
        """Return a one-line human-readable summary of the dataset."""
        kind_counts = {}
        for kind in self.feature_kinds:
            kind_counts[kind.value] = kind_counts.get(kind.value, 0) + 1
        kinds = ", ".join(f"{v} {k}" for k, v in sorted(kind_counts.items()))
        return (
            f"{self.name}: {len(self)} samples, {self.n_features} features "
            f"({kinds}), {self.n_classes} classes"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Dataset({self.summary()})"
