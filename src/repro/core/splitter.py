"""Candidate-predicate enumeration and the concrete ``bestSplit`` criterion.

This module implements the greedy split selection of §3.3:

``bestSplit(T) = argmin_{φ ∈ Φ'} |T↓φ|·ent(T↓φ) + |T↓¬φ|·ent(T↓¬φ)``

where ``Φ'`` contains only predicates that split ``T`` non-trivially.  For
real-valued features the candidate thresholds are the midpoints between
adjacent distinct observed values (§5.1), recomputed from the current subset
of the data at every node, exactly as ``DTraceR`` prescribes.

The per-feature split tables produced by :func:`feature_split_table` are the
shared computational backbone of both the concrete learner and the abstract
transformers in :mod:`repro.verify.transformers`: the abstract learner scores
the same candidate positions, but with interval arithmetic and a poisoning
budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset, FeatureKind
from repro.core.impurity import split_score
from repro.core.predicates import EqualityPredicate, Predicate, ThresholdPredicate
from repro.telemetry import profiling


@dataclass(frozen=True)
class FeatureSplitTable:
    """All candidate split positions for one feature of one training set.

    Attributes
    ----------
    feature:
        Column index the table refers to.
    lower_values / upper_values:
        For each candidate, the adjacent pair of distinct observed values
        ``(a, b)`` bracketing the threshold (``a < b``).  The concrete
        candidate threshold is the midpoint; the symbolic predicate of
        Appendix B is ``x <= [a, b)``.
    thresholds:
        Concrete midpoints ``(a + b) / 2``.
    left_sizes / left_class_counts:
        Number of elements (and per-class counts) satisfying ``x <= a``
        (equivalently ``x < b`` since no value lies strictly between).
    total_size / total_class_counts:
        Statistics of the whole training set the table was built from.
    """

    feature: int
    lower_values: np.ndarray
    upper_values: np.ndarray
    thresholds: np.ndarray
    left_sizes: np.ndarray
    left_class_counts: np.ndarray
    total_size: int
    total_class_counts: np.ndarray

    @property
    def n_candidates(self) -> int:
        return int(self.thresholds.shape[0])

    @property
    def right_sizes(self) -> np.ndarray:
        return self.total_size - self.left_sizes

    @property
    def right_class_counts(self) -> np.ndarray:
        return self.total_class_counts[np.newaxis, :] - self.left_class_counts


def feature_split_table(
    X: np.ndarray, y: np.ndarray, feature: int, n_classes: int
) -> FeatureSplitTable:
    """Build the :class:`FeatureSplitTable` for one feature of ``(X, y)``.

    Candidates are placed between every pair of adjacent *distinct* values of
    the feature, so every candidate splits the data non-trivially by
    construction.  The table is empty when the feature is constant.
    """
    with profiling.phase("split_table"):
        return _feature_split_table(X, y, feature, n_classes)


def _feature_split_table(
    X: np.ndarray, y: np.ndarray, feature: int, n_classes: int
) -> FeatureSplitTable:
    values = np.asarray(X)[:, feature]
    labels = np.asarray(y)
    order = np.argsort(values, kind="stable")
    return table_from_sorted(values[order], labels[order], feature, n_classes)


def table_from_sorted(
    sorted_values: np.ndarray,
    sorted_labels: np.ndarray,
    feature: int,
    n_classes: int,
) -> FeatureSplitTable:
    """Build a :class:`FeatureSplitTable` from one feature's value-sorted rows.

    This is the shared tail of :func:`feature_split_table` and the per-node
    derivation in :mod:`repro.core.split_plan` (which obtains the sorted rows
    by filtering a presorted global order instead of re-sorting).
    """
    total = int(sorted_values.shape[0])
    total_counts = np.bincount(sorted_labels, minlength=n_classes).astype(np.int64)

    # Boundary positions: index i such that sorted_values[i-1] < sorted_values[i].
    change = (
        np.nonzero(np.diff(sorted_values) > 0)[0] + 1
        if total > 1
        else np.empty(0, dtype=np.int64)
    )
    if change.size == 0:
        empty = np.empty(0)
        return FeatureSplitTable(
            feature=feature,
            lower_values=empty,
            upper_values=empty,
            thresholds=empty,
            left_sizes=np.empty(0, dtype=np.int64),
            left_class_counts=np.empty((0, n_classes), dtype=np.int64),
            total_size=total,
            total_class_counts=total_counts,
        )

    one_hot = np.zeros((total, n_classes), dtype=np.int64)
    one_hot[np.arange(total), sorted_labels] = 1
    cumulative = np.cumsum(one_hot, axis=0)

    left_sizes = change.astype(np.int64)
    left_class_counts = cumulative[change - 1]
    lower_values = sorted_values[change - 1]
    upper_values = sorted_values[change]
    thresholds = (lower_values + upper_values) / 2.0

    return FeatureSplitTable(
        feature=feature,
        lower_values=lower_values,
        upper_values=upper_values,
        thresholds=thresholds,
        left_sizes=left_sizes,
        left_class_counts=left_class_counts,
        total_size=total,
        total_class_counts=total_counts,
    )


def candidate_predicates(dataset: Dataset) -> List[Predicate]:
    """Enumerate every candidate predicate of the current training set.

    Real and boolean features yield threshold predicates at midpoints of
    adjacent distinct values (a non-constant boolean feature yields exactly
    ``x <= 0.5``); categorical features yield equality predicates for every
    observed value, provided the value does not cover the entire set.
    """
    predicates: List[Predicate] = []
    for feature, kind in enumerate(dataset.feature_kinds):
        if kind is FeatureKind.CATEGORICAL:
            values = dataset.feature_values(feature)
            if values.size <= 1:
                continue
            predicates.extend(EqualityPredicate(feature, float(v)) for v in values)
        else:
            table = feature_split_table(dataset.X, dataset.y, feature, dataset.n_classes)
            predicates.extend(
                ThresholdPredicate(feature, float(t)) for t in table.thresholds
            )
    return predicates


@dataclass(frozen=True)
class SplitChoice:
    """The outcome of ``bestSplit``: the chosen predicate and its statistics."""

    predicate: Predicate
    score: float
    left_size: int
    right_size: int
    left_class_counts: np.ndarray
    right_class_counts: np.ndarray

    def describe(self, feature_names: Sequence[str] = ()) -> str:
        return (
            f"{self.predicate.describe(feature_names)} "
            f"(score={self.score:.4f}, split {self.left_size}/{self.right_size})"
        )


def _score_table(table: FeatureSplitTable, impurity: str) -> np.ndarray:
    """Vectorized concrete scores for every candidate in a split table."""
    scores = np.empty(table.n_candidates)
    left_counts = table.left_class_counts
    right_counts = table.right_class_counts
    if impurity == "gini":
        # |L|*gini(L) = |L| - Σ c²/|L|; avoids Python-level loops.
        left_sizes = table.left_sizes.astype(np.float64)
        right_sizes = table.right_sizes.astype(np.float64)
        left_term = left_sizes - np.sum(left_counts**2, axis=1) / np.maximum(left_sizes, 1)
        right_term = right_sizes - np.sum(right_counts**2, axis=1) / np.maximum(
            right_sizes, 1
        )
        scores = left_term + right_term
    else:
        for i in range(table.n_candidates):
            scores[i] = split_score(left_counts[i], right_counts[i], impurity=impurity)
    return scores


def _score_table_reference(table: FeatureSplitTable, impurity: str) -> np.ndarray:
    """Scalar oracle for :func:`_score_table`: one ``split_score`` per candidate.

    Kept deliberately loop-per-candidate so the vectorized gini arithmetic
    above has an independently-derived mirror; the parity property test in
    ``tests/core/test_splitter_oracle.py`` holds them together (registered in
    the ``soundness-boundary`` kernel registry).
    """
    scores = np.empty(table.n_candidates)
    for i in range(table.n_candidates):
        scores[i] = split_score(
            table.left_class_counts[i], table.right_class_counts[i], impurity=impurity
        )
    return scores


def best_split(
    dataset: Dataset,
    *,
    impurity: str = "gini",
    predicate_pool: Optional[Sequence[Predicate]] = None,
) -> Optional[SplitChoice]:
    """Return the best non-trivial split of ``dataset`` or ``None`` (``⋄``).

    Ties are broken deterministically towards the lowest ``(feature,
    threshold)`` pair; the paper leaves tie-breaking nondeterministic, and the
    abstract learner accounts for *all* tied predicates, so any fixed concrete
    policy is compatible with the verification results.
    """
    if len(dataset) == 0:
        return None
    if predicate_pool is not None:
        return _best_split_from_pool(dataset, predicate_pool, impurity)

    best: Optional[SplitChoice] = None
    for feature, kind in enumerate(dataset.feature_kinds):
        if kind is FeatureKind.CATEGORICAL:
            candidate = _best_categorical_split(dataset, feature, impurity)
            if candidate is not None and (best is None or candidate.score < best.score):
                best = candidate
            continue
        table = feature_split_table(dataset.X, dataset.y, feature, dataset.n_classes)
        if table.n_candidates == 0:
            continue
        scores = _score_table(table, impurity)
        index = int(np.argmin(scores))
        candidate = SplitChoice(
            predicate=ThresholdPredicate(feature, float(table.thresholds[index])),
            score=float(scores[index]),
            left_size=int(table.left_sizes[index]),
            right_size=int(table.right_sizes[index]),
            left_class_counts=table.left_class_counts[index].copy(),
            right_class_counts=table.right_class_counts[index].copy(),
        )
        if best is None or candidate.score < best.score:
            best = candidate
    return best


def _best_categorical_split(
    dataset: Dataset, feature: int, impurity: str
) -> Optional[SplitChoice]:
    """Best equality split for one categorical feature (or ``None``)."""
    values = dataset.feature_values(feature)
    if values.size <= 1:
        return None
    best: Optional[SplitChoice] = None
    column = dataset.X[:, feature]
    for value in values:
        mask = column == value
        left = int(mask.sum())
        right = len(dataset) - left
        if left == 0 or right == 0:
            continue
        left_counts = np.bincount(dataset.y[mask], minlength=dataset.n_classes)
        right_counts = np.bincount(dataset.y[~mask], minlength=dataset.n_classes)
        score = split_score(left_counts, right_counts, impurity=impurity)
        candidate = SplitChoice(
            predicate=EqualityPredicate(feature, float(value)),
            score=score,
            left_size=left,
            right_size=right,
            left_class_counts=left_counts,
            right_class_counts=right_counts,
        )
        if best is None or candidate.score < best.score:
            best = candidate
    return best


def _best_split_from_pool(
    dataset: Dataset, pool: Sequence[Predicate], impurity: str
) -> Optional[SplitChoice]:
    """``bestSplit`` over an explicit, fixed predicate pool."""
    best: Optional[SplitChoice] = None
    for predicate in pool:
        mask = predicate.evaluate_matrix(dataset.X)
        left = int(mask.sum())
        right = len(dataset) - left
        if left == 0 or right == 0:
            continue
        left_counts = np.bincount(dataset.y[mask], minlength=dataset.n_classes)
        right_counts = np.bincount(dataset.y[~mask], minlength=dataset.n_classes)
        score = split_score(left_counts, right_counts, impurity=impurity)
        candidate = SplitChoice(
            predicate=predicate,
            score=score,
            left_size=left,
            right_size=right,
            left_class_counts=left_counts,
            right_class_counts=right_counts,
        )
        if best is None or candidate.score < best.score:
            best = candidate
    return best
