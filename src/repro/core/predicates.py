"""The predicate language used at decision-tree splits.

Concrete predicates (§3.3 of the paper) are boolean functions over feature
vectors; the learner only ever uses *threshold* predicates ``x_i <= τ`` (a
boolean feature is a threshold at ``0.5``) and, for the categorical
extension, equality predicates ``x_i == v``.

Symbolic predicates (§5.1 / Appendix B) widen a threshold into an interval of
thresholds ``x_i <= [a, b)`` with a three-valued semantics
(:class:`Trilean`); they are how the abstract learner soundly represents the
data-dependent thresholds that *could* have been chosen for some poisoned
training set.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np


class Trilean(enum.Enum):
    """Three-valued truth used by symbolic predicates."""

    FALSE = 0
    MAYBE = 1
    TRUE = 2

    @property
    def definitely_true(self) -> bool:
        return self is Trilean.TRUE

    @property
    def definitely_false(self) -> bool:
        return self is Trilean.FALSE

    @property
    def possibly_true(self) -> bool:
        return self is not Trilean.FALSE

    @property
    def possibly_false(self) -> bool:
        return self is not Trilean.TRUE


class Predicate(abc.ABC):
    """Abstract base class for all split predicates."""

    feature: int

    @abc.abstractmethod
    def evaluate(self, x: Sequence[float]) -> bool:
        """Evaluate the predicate on a single feature vector."""

    @abc.abstractmethod
    def evaluate_matrix(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the predicate on every row of ``X`` (boolean array)."""

    @abc.abstractmethod
    def describe(self, feature_names: Sequence[str] = ()) -> str:
        """Return a human-readable rendering such as ``x3 <= 0.5``."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True, order=True)
class ThresholdPredicate(Predicate):
    """The concrete predicate ``x_feature <= threshold``."""

    feature: int
    threshold: float

    def evaluate(self, x: Sequence[float]) -> bool:
        return float(x[self.feature]) <= self.threshold

    def evaluate_matrix(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X)[:, self.feature] <= self.threshold

    def describe(self, feature_names: Sequence[str] = ()) -> str:
        name = feature_names[self.feature] if feature_names else f"x{self.feature}"
        return f"{name} <= {self.threshold:g}"


@dataclass(frozen=True, order=True)
class EqualityPredicate(Predicate):
    """The concrete predicate ``x_feature == value`` (categorical features)."""

    feature: int
    value: float

    def evaluate(self, x: Sequence[float]) -> bool:
        return float(x[self.feature]) == self.value

    def evaluate_matrix(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X)[:, self.feature] == self.value

    def describe(self, feature_names: Sequence[str] = ()) -> str:
        name = feature_names[self.feature] if feature_names else f"x{self.feature}"
        return f"{name} == {self.value:g}"


@dataclass(frozen=True, order=True)
class SymbolicThresholdPredicate(Predicate):
    """The symbolic predicate ``x_feature <= [low, high)`` (Definition B.2).

    It represents the set of concrete threshold predicates
    ``{ x_feature <= τ | τ ∈ [low, high) }``.  Point evaluation is
    three-valued: definitely true when ``x <= low``, definitely false when
    ``x >= high``, and *maybe* in between, because the answer depends on
    which concrete threshold the learner would have chosen.
    """

    feature: int
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(
                f"symbolic predicate requires low < high, got [{self.low}, {self.high})"
            )

    # Concrete-style evaluation treats MAYBE as satisfiable; use
    # :meth:`evaluate_trilean` when the distinction matters.
    def evaluate(self, x: Sequence[float]) -> bool:
        return self.evaluate_trilean(x).possibly_true

    def evaluate_trilean(self, x: Sequence[float]) -> Trilean:
        value = float(x[self.feature])
        if value <= self.low:
            return Trilean.TRUE
        if value >= self.high:
            return Trilean.FALSE
        return Trilean.MAYBE

    def evaluate_matrix(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X)[:, self.feature] <= self.low

    def contains_threshold(self, threshold: float) -> bool:
        """Return whether a concrete threshold lies in ``[low, high)``."""
        return self.low <= threshold < self.high

    def concrete_representative(self) -> ThresholdPredicate:
        """Return a concrete member of the concretization (the midpoint)."""
        return ThresholdPredicate(self.feature, (self.low + self.high) / 2.0)

    def describe(self, feature_names: Sequence[str] = ()) -> str:
        name = feature_names[self.feature] if feature_names else f"x{self.feature}"
        return f"{name} <= [{self.low:g}, {self.high:g})"


AnyPredicate = Union[ThresholdPredicate, EqualityPredicate, SymbolicThresholdPredicate]


def point_satisfies(predicate: Predicate, x: Sequence[float]) -> Trilean:
    """Evaluate any predicate on a point with three-valued semantics.

    Concrete predicates never return :data:`Trilean.MAYBE`.
    """
    if isinstance(predicate, SymbolicThresholdPredicate):
        return predicate.evaluate_trilean(x)
    return Trilean.TRUE if predicate.evaluate(x) else Trilean.FALSE
