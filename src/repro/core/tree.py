"""Decision trees and their trace-based view (§3.2 of the paper).

A :class:`DecisionTree` is the usual recursive node structure produced by the
CART-style learner.  The paper, however, reasons about a tree as the *set of
its root-to-leaf traces*; :class:`Trace` captures one such trace (the
sequence of predicate/branch decisions plus the leaf's classification), and
:meth:`DecisionTree.traces` materializes the full trace set, which is used by
the tests to validate the trace-based learner ``DTrace`` against the full
tree construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.predicates import Predicate


@dataclass
class TreeNode:
    """One node of a learned decision tree.

    Internal nodes hold the split predicate and two children: ``left`` is the
    subtree for elements *satisfying* the predicate, ``right`` for the rest.
    Every node (leaves included) stores the class counts of the training
    elements that reached it, from which predictions and class probabilities
    are derived.
    """

    class_counts: np.ndarray
    predicate: Optional[Predicate] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.predicate is None

    @property
    def n_samples(self) -> int:
        return int(np.sum(self.class_counts))

    def class_probabilities(self) -> np.ndarray:
        total = self.n_samples
        if total == 0:
            k = len(self.class_counts)
            return np.full(k, 1.0 / max(1, k))
        return np.asarray(self.class_counts, dtype=float) / total

    def prediction(self) -> int:
        """Majority class of the node, ties broken towards the lowest index."""
        return int(np.argmax(self.class_counts))


@dataclass(frozen=True)
class Trace:
    """A root-to-leaf trace: predicate decisions plus the leaf classification."""

    decisions: Tuple[Tuple[Predicate, bool], ...]
    prediction: int
    class_probabilities: Tuple[float, ...]

    @property
    def depth(self) -> int:
        return len(self.decisions)

    def accepts(self, x: Sequence[float]) -> bool:
        """Whether the input ``x`` satisfies every decision along the trace."""
        return all(
            predicate.evaluate(x) == branch for predicate, branch in self.decisions
        )

    def describe(self, feature_names: Sequence[str] = ()) -> str:
        parts = []
        for predicate, branch in self.decisions:
            text = predicate.describe(feature_names)
            parts.append(text if branch else f"not({text})")
        path = " and ".join(parts) if parts else "true"
        return f"[{path}] -> class {self.prediction}"


@dataclass
class DecisionTree:
    """A learned decision-tree classifier."""

    root: TreeNode
    n_classes: int
    feature_names: Tuple[str, ...] = field(default_factory=tuple)
    class_names: Tuple[str, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------ prediction
    def predict(self, x: Sequence[float]) -> int:
        """Classify a single feature vector."""
        return self._leaf_for(x).prediction()

    def predict_proba(self, x: Sequence[float]) -> np.ndarray:
        """Return the leaf class-probability vector for ``x``."""
        return self._leaf_for(x).class_probabilities()

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Classify every row of ``X``."""
        X = np.asarray(X, dtype=float)
        return np.array([self.predict(row) for row in X], dtype=np.int64)

    def _leaf_for(self, x: Sequence[float]) -> TreeNode:
        node = self.root
        while not node.is_leaf:
            assert node.predicate is not None and node.left and node.right
            node = node.left if node.predicate.evaluate(x) else node.right
        return node

    # ------------------------------------------------------------ trace view
    def trace_for(self, x: Sequence[float]) -> Trace:
        """Return the root-to-leaf trace traversed by ``x``."""
        decisions: List[Tuple[Predicate, bool]] = []
        node = self.root
        while not node.is_leaf:
            assert node.predicate is not None and node.left and node.right
            branch = bool(node.predicate.evaluate(x))
            decisions.append((node.predicate, branch))
            node = node.left if branch else node.right
        return Trace(
            decisions=tuple(decisions),
            prediction=node.prediction(),
            class_probabilities=tuple(float(p) for p in node.class_probabilities()),
        )

    def traces(self) -> List[Trace]:
        """Materialize the full trace set (the paper's view of a tree)."""
        result: List[Trace] = []

        def walk(node: TreeNode, prefix: List[Tuple[Predicate, bool]]) -> None:
            if node.is_leaf:
                result.append(
                    Trace(
                        decisions=tuple(prefix),
                        prediction=node.prediction(),
                        class_probabilities=tuple(
                            float(p) for p in node.class_probabilities()
                        ),
                    )
                )
                return
            assert node.predicate is not None and node.left and node.right
            walk(node.left, prefix + [(node.predicate, True)])
            walk(node.right, prefix + [(node.predicate, False)])

        walk(self.root, [])
        return result

    # ------------------------------------------------------------ statistics
    def depth(self) -> int:
        """Maximum number of predicate decisions along any trace."""

        def node_depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            assert node.left and node.right
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(self.root)

    def n_nodes(self) -> int:
        def count(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            assert node.left and node.right
            return 1 + count(node.left) + count(node.right)

        return count(self.root)

    def n_leaves(self) -> int:
        return sum(1 for _ in self.traces())

    # -------------------------------------------------------------- printing
    def to_text(self) -> str:
        """Render the tree as an indented text diagram."""
        lines: List[str] = []

        def render(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                probabilities = ", ".join(
                    f"{p:.2f}" for p in node.class_probabilities()
                )
                label = (
                    self.class_names[node.prediction()]
                    if self.class_names
                    else f"class {node.prediction()}"
                )
                lines.append(f"{indent}leaf -> {label} [{probabilities}]")
                return
            assert node.predicate is not None and node.left and node.right
            lines.append(f"{indent}if {node.predicate.describe(self.feature_names)}:")
            render(node.left, indent + "  ")
            lines.append(f"{indent}else:")
            render(node.right, indent + "  ")

        render(self.root, "")
        return "\n".join(lines)
