"""Benchmark for the footnote-6 cprob# transformer ablation (experiment E11).

The paper's implementation uses the *optimal* class-probability transformer
while presenting a simpler interval-division transformer in the text.  This
ablation quantifies the difference in certification power and interval
tightness between the two.
"""

from repro.experiments.ablations import (
    compare_cprob_transformers,
    render_cprob_ablation,
)
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_ablation_cprob_transformers(benchmark):
    config = bench_config(
        depths=(1, 2),
        n_test_points=4,
        poisoning_amounts={"mnist17-binary": (1, 8, 64)},
    )

    def run():
        return compare_cprob_transformers("mnist17-binary", config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_cprob", render_cprob_ablation(rows))

    assert rows
    for row in rows:
        # The optimal transformer can only help.
        assert row.optimal_certified >= row.box_transformer_certified
        assert (
            row.optimal_mean_interval_width
            <= row.box_transformer_mean_interval_width + 1e-9
        )
    # At some poisoning level the tightening is strict.
    assert any(
        row.optimal_mean_interval_width
        < row.box_transformer_mean_interval_width - 1e-12
        for row in rows
    )
