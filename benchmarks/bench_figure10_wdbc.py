"""Benchmark regenerating Figure 10 (Wisconsin Diagnostic Breast Cancer panels)."""

from repro.experiments.perf_figures import (
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_figure10_wdbc(benchmark):
    config = bench_config(depths=(1, 2), n_test_points=5)

    def run():
        return compute_performance_figure("wdbc", config)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("figure10_wdbc", render_performance_figure(points))

    assert points
    # WDBC is well separated, so some points certify at n >= 4 (the paper
    # verifies a sizeable fraction up to n in the tens).
    assert any(point.poisoning_amount >= 4 and point.verified > 0 for point in points)
