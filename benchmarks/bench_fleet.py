"""Benchmark for `repro.fleet`: routed TCP serving and micro-batching.

Two claims are measured:

1. **Routing overhead is bounded**: a warm batch certified through the
   router (client → router TCP → shard-owner TCP) must stay within 2× the
   wall-clock of the same warm batch over a direct Unix socket.  The router
   adds exactly one relay hop plus shard hashing; both are per-batch, not
   per-point.
2. **Micro-batching pools the storm**: ``CONCURRENT_CLIENTS`` clients each
   certifying one *distinct* point of the same (dataset, model) through a
   ``--batch-window`` server must coalesce into shared windows (mean pooled
   frames per window ≥ 2), paying engine-plan and scheduler bookkeeping
   per window instead of per frame.  Wall-clock for both storms is
   reported but not gated: at benchmark scale the window hold time
   (``BATCH_WINDOW_SECONDS``) dominates the tiny certifications, so the
   latency win only appears under real load.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_fleet.py``);
artifacts: ``results/fleet.txt`` and ``results/BENCH_fleet.json``.
"""

import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.dataset import Dataset
from repro.experiments.reporting import results_directory, save_artifact
from repro.fleet import CertificationRouter
from repro.poisoning.models import RemovalPoisoningModel
from repro.service import CertificationClient, CertificationServer, wait_for_server
from repro.utils.tables import TextTable

ROWS = 512
BATCH_POINTS = 32
CONCURRENT_CLIENTS = 8
BATCH_WINDOW_SECONDS = 0.05


def _dataset() -> Dataset:
    rng = np.random.default_rng(11)
    per_class = ROWS // 2
    X = np.concatenate(
        [rng.normal(0.0, 1.0, per_class), rng.normal(10.0, 1.0, per_class)]
    ).reshape(-1, 1)
    y = np.concatenate([np.zeros(per_class), np.ones(per_class)]).astype(np.int64)
    return Dataset(X=X, y=y, n_classes=2, name="fleet-bench")


def _points() -> np.ndarray:
    return np.linspace(-1.0, 12.0, BATCH_POINTS).reshape(-1, 1)


def _timed_batch(address, dataset, points, model, *, reps: int = 5) -> float:
    """Best-of-``reps`` warm wall-clock: a single ~5ms sample is all jitter."""
    with CertificationClient(
        address, max_depth=1, domain="box", timeout_seconds=30.0
    ) as client:
        client.certify_batch(dataset, points, model)  # warm the runtime
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            report = client.certify_batch(dataset, points, model)
            best = min(best, time.perf_counter() - start)
            assert report.runtime_stats["learner_invocations"] == 0, (
                "warm rerun was not served from cache"
            )
    return best


def _storm(address, dataset, points, model) -> float:
    """Wall-clock of CONCURRENT_CLIENTS one-point certifies, distinct points."""
    barrier = threading.Barrier(CONCURRENT_CLIENTS)
    errors = []

    def one(i):
        try:
            with CertificationClient(
                address, max_depth=1, domain="box", timeout_seconds=30.0
            ) as client:
                barrier.wait(timeout=30)
                client.certify_batch(dataset, points[i : i + 1], model)
        except BaseException as error:  # noqa: BLE001 - collected for the gate
            errors.append(error)

    threads = [
        threading.Thread(target=one, args=(i,)) for i in range(CONCURRENT_CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return elapsed


def main() -> int:
    dataset = _dataset()
    points = _points()
    model = RemovalPoisoningModel(2)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # -- warm batch: direct Unix socket vs routed TCP -------------------
        direct_server = CertificationServer(
            tmp_path / "s", cache_dir=tmp_path / "direct-cache"
        )
        with direct_server:
            wait_for_server(direct_server.socket_path, timeout=30)
            direct_seconds = _timed_batch(
                direct_server.socket_path, dataset, points, model
            )

        backend = CertificationServer(
            tcp="127.0.0.1:0", cache_dir=tmp_path / "routed-cache"
        )
        backend.start()
        router = CertificationRouter(
            [backend.address], tcp="127.0.0.1:0", request_timeout=60.0
        )
        router.start()
        wait_for_server(router.address, timeout=30)
        try:
            routed_seconds = _timed_batch(router.address, dataset, points, model)
        finally:
            router.close()
            backend.close()

        # -- single-point storms: unbatched vs micro-batched ----------------
        plain = CertificationServer(
            tcp="127.0.0.1:0", cache_dir=tmp_path / "plain-cache"
        )
        plain.start()
        try:
            unbatched_seconds = _storm(plain.address, dataset, points, model)
        finally:
            plain.close()

        pooled = CertificationServer(
            tcp="127.0.0.1:0",
            cache_dir=tmp_path / "pooled-cache",
            batch_window=BATCH_WINDOW_SECONDS,
        )
        pooled.start()
        try:
            batched_seconds = _storm(pooled.address, dataset, points, model)
            with CertificationClient(pooled.address) as probe:
                snapshot = probe.metrics()["metrics"]
        finally:
            pooled.close()
        size_series = snapshot.get("batch_size_points", {}).get("series", [])
        windows = sum(row.get("count", 0) for row in size_series)
        pooled_frames = sum(row.get("sum", 0.0) for row in size_series)
        mean_window_size = pooled_frames / windows if windows else 0.0

    per_second = {
        "direct_warm": BATCH_POINTS / direct_seconds,
        "routed_warm": BATCH_POINTS / routed_seconds,
        "storm_unbatched": CONCURRENT_CLIENTS / unbatched_seconds,
        "storm_batched": CONCURRENT_CLIENTS / batched_seconds,
    }
    routed_ratio = routed_seconds / direct_seconds

    table = TextTable(["measurement", "points/s", "seconds"])
    table.add_row(
        ["direct Unix-socket warm", f"{per_second['direct_warm']:.1f}",
         f"{direct_seconds:.4f}"]
    )
    table.add_row(
        ["routed TCP warm", f"{per_second['routed_warm']:.1f}",
         f"{routed_seconds:.4f}"]
    )
    table.add_row(
        [f"{CONCURRENT_CLIENTS}-client storm, unbatched",
         f"{per_second['storm_unbatched']:.1f}", f"{unbatched_seconds:.4f}"]
    )
    table.add_row(
        [f"{CONCURRENT_CLIENTS}-client storm, batched",
         f"{per_second['storm_batched']:.1f}", f"{batched_seconds:.4f}"]
    )
    save_artifact(
        "fleet",
        f"Fleet serving: {BATCH_POINTS}-point warm batches and "
        f"{CONCURRENT_CLIENTS}-client single-point storms on "
        f"{ROWS}-row {dataset.name} "
        f"(routed/direct warm ratio {routed_ratio:.2f}x, "
        f"mean pooled frames per window {mean_window_size:.1f})\n"
        + table.render(),
    )
    payload = {
        "dataset_rows": ROWS,
        "batch_points": BATCH_POINTS,
        "concurrent_clients": CONCURRENT_CLIENTS,
        "batch_window_seconds": BATCH_WINDOW_SECONDS,
        "direct_warm_seconds": direct_seconds,
        "routed_warm_seconds": routed_seconds,
        "routed_over_direct_ratio": routed_ratio,
        "storm_unbatched_seconds": unbatched_seconds,
        "storm_batched_seconds": batched_seconds,
        "batch_windows": windows,
        "mean_pooled_frames_per_window": mean_window_size,
        "points_per_second": per_second,
    }
    (results_directory() / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(table.render())
    print(f"routed/direct warm ratio: {routed_ratio:.2f}x")
    print(
        f"micro-batch windows: {windows} "
        f"(mean {mean_window_size:.1f} pooled frames/window)"
    )

    # Acceptance gates: the router hop must not double warm latency, and
    # the storm must actually pool into shared windows.
    if routed_ratio > 2.0:
        print(f"FAIL: routed warm is {routed_ratio:.2f}x direct (> 2.0x)")
        return 1
    if mean_window_size < 2.0:
        print(f"FAIL: storms did not pool (mean window {mean_window_size:.1f})")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
