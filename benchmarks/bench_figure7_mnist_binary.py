"""Benchmark regenerating Figure 7 (MNIST-1-7-Binary performance panels).

Paper artifact: Figure 7 — number of verified points, average running time,
and average peak memory versus the poisoning amount, for the Box and
disjunctive domains at each depth, on the boolean-pixel MNIST variant.
"""

from repro.experiments.perf_figures import (
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_figure7_mnist_binary(benchmark):
    config = bench_config(depths=(1, 2), n_test_points=4)

    def run():
        return compute_performance_figure("mnist17-binary", config)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("figure7_mnist_binary", render_performance_figure(points))

    by_key = {(p.domain, p.depth, p.poisoning_amount): p for p in points}
    # Shape check 1: both domains certify points at small n on this large,
    # well-separated dataset.
    assert by_key[("box", 1, 1)].verified > 0
    assert by_key[("disjuncts", 1, 1)].verified > 0
    # Shape check 2: the disjunctive domain certifies at least as many points
    # as Box wherever both ran (the paper's precision ordering).
    for (domain, depth, n), point in by_key.items():
        if domain != "box":
            continue
        twin = by_key.get(("disjuncts", depth, n))
        if twin is not None:
            assert twin.verified >= point.verified
