"""Benchmark for the composite removal+flip threat model ``Δ_{r,f}``.

The composite model is the first two-dimensional perturbation family in the
repo: the attacker removes up to ``r`` elements *and* flips up to ``f``
labels, and the verdict cache derives along componentwise ``(r, f)``
dominance.  This benchmark walks the configured ``(n_remove, n_flip)`` grid
on full-scale iris (the 3-class paper benchmark) at depth 2, certifying each
pair on the Box domain alone and on the ``"either"`` ladder (Box with
disjunctive fallback), then reruns the whole grid against a warm persistent
cache.

Recorded in ``results/BENCH_composite.json``: per-pair certified counts for
both domain settings, cold wall-clock, and the warm-cache wall-clock — the
perf trajectory of the new family starts here.

Acceptance bars encoded below:

* the ladder never certifies fewer points than Box, and is *strictly* more
  precise on at least one grid pair (disjunctive-domain flip certification
  earning its keep);
* the warm rerun answers the entire grid with zero learner invocations.
"""

import json
import time

from repro.api import CertificationEngine, CertificationRequest
from repro.experiments.reporting import results_directory, save_artifact
from repro.experiments.runner import load_experiment_split, select_test_points
from repro.poisoning.models import CompositePoisoningModel
from repro.runtime import CertificationRuntime
from repro.utils.tables import TextTable

from conftest import bench_config


def bench_composite_iris(benchmark, tmp_path):
    # Grid kept deliberately smaller than the config default: flip-budget
    # pairs are the expensive rows (every candidate split stays live under a
    # flipped label), and the point of the benchmark is the per-pair trend,
    # not exhaustive coverage.
    config = bench_config(
        n_test_points=4,
        dataset_scales={"iris": 1.0},
        timeout_seconds=30.0,
        composite_budgets=((0, 1), (1, 0), (1, 1)),
    )
    budget_pairs = config.composite_budgets
    split = load_experiment_split("iris", config)
    test_points = select_test_points(split, config, "iris")

    def engine(domain, runtime=None):
        # The flip rows need headroom over the default disjunct budget: at
        # the stock 4096 they exhaust resources (an environmental outcome the
        # cache rightly refuses to store), at 100k every verdict is decisive.
        return CertificationEngine(
            max_depth=2,
            domain=domain,
            timeout_seconds=config.timeout_seconds,
            max_disjuncts=100_000,
            runtime=runtime,
        )

    def certified(eng, pair):
        report = eng.verify(
            CertificationRequest(
                split.train, test_points, CompositePoisoningModel(*pair)
            )
        )
        return report

    def run_grid():
        box_engine = engine("box")
        ladder_engine = engine("either", CertificationRuntime(tmp_path / "cache"))
        rows = []
        for pair in budget_pairs:
            box_report = certified(box_engine, pair)
            ladder_report = certified(ladder_engine, pair)
            rows.append((pair, box_report, ladder_report))
        return ladder_engine, rows

    cold_start = time.perf_counter()
    ladder_engine, rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    cold_seconds = time.perf_counter() - cold_start

    # Warm rerun of the full ladder grid: every verdict must come from the
    # persistent cache (exact hits), with zero learner invocations.
    warm_start = time.perf_counter()
    warm_invocations = 0
    for pair, _, ladder_report in rows:
        warm_report = certified(ladder_engine, pair)
        warm_invocations += warm_report.runtime_stats["learner_invocations"]
        assert [r.status for r in warm_report.results] == [
            r.status for r in ladder_report.results
        ]
    warm_seconds = time.perf_counter() - warm_start

    table = TextTable(
        ["(r, f)", "box certified", "either certified", "log10 |Δ(T)|"]
    )
    per_pair = {}
    for pair, box_report, ladder_report in rows:
        magnitude = ladder_report.results[0].log10_num_datasets
        table.add_row(
            [
                f"({pair[0]}, {pair[1]})",
                box_report.certified_count,
                ladder_report.certified_count,
                f"{magnitude:.1f}",
            ]
        )
        per_pair[f"{pair[0]},{pair[1]}"] = {
            "box_certified": box_report.certified_count,
            "either_certified": ladder_report.certified_count,
            "log10_num_datasets": magnitude,
        }
    save_artifact(
        "composite_model",
        f"Composite removal+flip certification (iris, |T|={len(split.train)}, "
        f"{len(test_points)} test points, depth 2)\n" + table.render()
        + f"\ncold grid: {cold_seconds:.2f}s, warm cached grid: {warm_seconds:.2f}s",
    )
    (results_directory() / "BENCH_composite.json").write_text(
        json.dumps(
            {
                "dataset": "iris",
                "train_size": len(split.train),
                "test_points": len(test_points),
                "depth": 2,
                "budget_pairs": per_pair,
                "cold_grid_seconds": cold_seconds,
                "warm_cached_grid_seconds": warm_seconds,
                "warm_learner_invocations": warm_invocations,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # The domain ladder can only add certificates on top of Box...
    for pair, box_report, ladder_report in rows:
        assert ladder_report.certified_count >= box_report.certified_count, pair
    # ...and must strictly beat Box somewhere on this grid, or the
    # disjunctive flip path stopped pulling its weight.
    assert any(
        ladder_report.certified_count > box_report.certified_count
        for _, box_report, ladder_report in rows
    )
    assert warm_invocations == 0
