"""Benchmark for the paper's headline claim (§2 and §6.2).

The paper highlights that Antidote can prove an MNIST-1-7 digit robust to 64
(and in one showcase 192) poisoned training elements — perturbation spaces of
roughly 10^174 and 10^432 concrete training sets — in seconds to minutes,
where naïve enumeration is hopeless.  At this reproduction's reduced dataset
scale the perturbation space is smaller but still astronomically beyond
enumeration; the benchmark records both the certification outcomes and the
log10 sizes of the enumeration space that was avoided.
"""

import math

from repro.api import CertificationEngine, CertificationRequest
from repro.experiments.reporting import save_artifact
from repro.experiments.runner import load_experiment_split, select_test_points
from repro.poisoning.models import RemovalPoisoningModel
from repro.utils.tables import TextTable

from conftest import bench_config


def bench_headline_mnist_binary_depth2(benchmark):
    config = bench_config(
        depths=(2,),
        n_test_points=3,
        dataset_scales={"mnist17-binary": 0.15},
        timeout_seconds=60.0,
    )
    split = load_experiment_split("mnist17-binary", config)
    test_points = select_test_points(split, config, "mnist17-binary")
    poisoning = 64
    engine = CertificationEngine(
        max_depth=2,
        domain="either",
        timeout_seconds=config.timeout_seconds,
        max_disjuncts=config.max_disjuncts,
    )
    request = CertificationRequest(
        split.train, test_points, RemovalPoisoningModel(poisoning)
    )

    def run():
        return list(engine.verify(request).results)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["point", "status", "domain", "time (s)", "log10 |Δn(T)|", "trees avoided"]
    )
    for index, result in enumerate(results):
        table.add_row(
            [
                index,
                result.status.value,
                result.domain,
                result.elapsed_seconds,
                result.log10_num_datasets,
                f"~10^{result.log10_num_datasets:.0f}",
            ]
        )
    header = (
        f"Headline experiment: MNIST-1-7-Binary-like, depth 2, n={poisoning} "
        f"(|T| = {len(split.train)})"
    )
    save_artifact("headline_mnist", header + "\n" + table.render())

    # At least one digit must be certified at n=64 (the paper certifies 38 of
    # 100 at this setting on the full-size dataset).
    assert any(result.is_certified for result in results)
    # The avoided enumeration space is astronomically large.
    assert all(result.log10_num_datasets > 50 for result in results)
    # Sanity-check the paper's own magnitude claims with the threat model.
    assert abs(RemovalPoisoningModel(64).log10_num_neighbors(13007) - 174) < 2
    assert abs(RemovalPoisoningModel(192).log10_num_neighbors(13007) - 432) < 3
    assert math.isfinite(results[0].elapsed_seconds)
