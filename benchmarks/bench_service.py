"""Benchmark for the `repro.service` daemon: socket overhead and warm serving.

Three claims are measured:

1. **Socket overhead is bounded**: certifying through the Unix-socket
   protocol costs one JSON round trip per batch on top of the in-process
   path; warm (cache-served) batches must still clear hundreds of points
   per second through the socket.
2. **Warm beats cold**: a second identical batch against the daemon answers
   from the warm runtime with **zero** learner invocations and far higher
   throughput.
3. **Concurrency scales by coalescing**: four clients hammering the same
   batch finish with one learner invocation per distinct point (the
   scheduler coalesces in-flight duplicates), so aggregate throughput does
   not collapse under redundant traffic.

Artifacts: ``results/service.txt`` (rendered table) and
``results/BENCH_service.json`` (machine-readable, tracked across PRs).
"""

import json
import threading
import time

import numpy as np

from repro.api import CertificationEngine, CertificationRequest
from repro.core.dataset import Dataset
from repro.experiments.reporting import results_directory, save_artifact
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import CertificationRuntime
from repro.service import CertificationClient, CertificationServer, wait_for_server
from repro.utils.tables import TextTable

ROWS = 512
BATCH_POINTS = 32
CONCURRENT_CLIENTS = 4


def _dataset() -> Dataset:
    rng = np.random.default_rng(11)
    per_class = ROWS // 2
    X = np.concatenate(
        [rng.normal(0.0, 1.0, per_class), rng.normal(10.0, 1.0, per_class)]
    ).reshape(-1, 1)
    y = np.concatenate([np.zeros(per_class), np.ones(per_class)]).astype(np.int64)
    return Dataset(X=X, y=y, n_classes=2, name="service-bench")


def _points() -> np.ndarray:
    return np.linspace(-1.0, 12.0, BATCH_POINTS).reshape(-1, 1)


def bench_service_round_trip(benchmark, tmp_path):
    dataset = _dataset()
    points = _points()
    model = RemovalPoisoningModel(2)

    # -- in-process reference: cold and warm against a local runtime --------
    engine = CertificationEngine(
        max_depth=1,
        domain="box",
        timeout_seconds=30.0,
        runtime=CertificationRuntime(tmp_path / "local-cache"),
    )
    request = CertificationRequest(dataset, points, model)
    start = time.perf_counter()
    local_cold = engine.verify(request)
    local_cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    local_warm = engine.verify(request)
    local_warm_seconds = time.perf_counter() - start
    assert local_warm.runtime_stats["learner_invocations"] == 0

    # -- served: cold, warm, and concurrent through the Unix socket --------
    server = CertificationServer(tmp_path / "s", cache_dir=tmp_path / "served-cache")
    with server:
        wait_for_server(server.socket_path, timeout=30)
        with CertificationClient(
            server.socket_path, max_depth=1, domain="box", timeout_seconds=30.0
        ) as client:
            start = time.perf_counter()
            served_cold = client.certify_batch(dataset, points, model)
            served_cold_seconds = time.perf_counter() - start

            start = time.perf_counter()
            served_warm = benchmark.pedantic(
                lambda: client.certify_batch(dataset, points, model),
                rounds=1,
                iterations=1,
            )
            served_warm_seconds = time.perf_counter() - start
            assert served_warm.runtime_stats["learner_invocations"] == 0
            assert [r.status for r in served_warm.results] == [
                r.status for r in served_cold.results
            ]

        # Four clients, same warm batch, concurrently.
        reports = {}

        def hammer(name):
            with CertificationClient(
                server.socket_path, max_depth=1, domain="box", timeout_seconds=30.0
            ) as worker:
                reports[name] = worker.certify_batch(dataset, points, model)

        invocations_before = server.runtime.stats.learner_invocations
        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(CONCURRENT_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - start
        assert len(reports) == CONCURRENT_CLIENTS
        # Redundant concurrent traffic must not re-run the learner.
        assert server.runtime.stats.learner_invocations == invocations_before

    per_second = {
        "local_cold": BATCH_POINTS / local_cold_seconds,
        "local_warm": BATCH_POINTS / local_warm_seconds,
        "served_cold": BATCH_POINTS / served_cold_seconds,
        "served_warm": BATCH_POINTS / served_warm_seconds,
        "served_warm_4_clients": (
            CONCURRENT_CLIENTS * BATCH_POINTS / concurrent_seconds
        ),
    }

    table = TextTable(["measurement", "points/s", "seconds"])
    table.add_row(["in-process cold", f"{per_second['local_cold']:.1f}", f"{local_cold_seconds:.4f}"])
    table.add_row(["in-process warm", f"{per_second['local_warm']:.1f}", f"{local_warm_seconds:.4f}"])
    table.add_row(["socket cold", f"{per_second['served_cold']:.1f}", f"{served_cold_seconds:.4f}"])
    table.add_row(["socket warm", f"{per_second['served_warm']:.1f}", f"{served_warm_seconds:.4f}"])
    table.add_row(
        [
            f"socket warm, {CONCURRENT_CLIENTS} clients",
            f"{per_second['served_warm_4_clients']:.1f}",
            f"{concurrent_seconds:.4f}",
        ]
    )
    save_artifact(
        "service",
        f"Certification service: {BATCH_POINTS}-point batches on "
        f"{ROWS}-row {_dataset().name}\n" + table.render(),
    )
    payload = {
        "dataset_rows": ROWS,
        "batch_points": BATCH_POINTS,
        "concurrent_clients": CONCURRENT_CLIENTS,
        "local_cold_seconds": local_cold_seconds,
        "local_warm_seconds": local_warm_seconds,
        "served_cold_seconds": served_cold_seconds,
        "served_warm_seconds": served_warm_seconds,
        "served_concurrent_seconds": concurrent_seconds,
        "points_per_second": per_second,
        "served_warm_learner_invocations": served_warm.runtime_stats[
            "learner_invocations"
        ],
    }
    (results_directory() / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # The warm daemon answers identical batches without learner work, and
    # must be much faster than the cold run despite the socket round trip.
    assert served_warm_seconds < served_cold_seconds
    assert local_cold.total == served_cold.total == BATCH_POINTS
