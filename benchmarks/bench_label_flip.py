"""Benchmark for the label-flip extension (experiment E12 in DESIGN.md).

The paper's related-work section contrasts its removal model with the
label-contamination model studied elsewhere; this extension benchmark
certifies the same test points against (a) element removal, (b) label flips,
and (c) the combined budget, quantifying how much harder label corruption is
to certify at the same budget.
"""

from repro.api import CertificationEngine, CertificationRequest
from repro.experiments.reporting import save_artifact
from repro.experiments.runner import load_experiment_split, select_test_points
from repro.poisoning.label_flip import LabelFlipVerifier
from repro.poisoning.models import LabelFlipModel, RemovalPoisoningModel
from repro.utils.tables import TextTable

from conftest import bench_config


def bench_label_flip_vs_removal(benchmark):
    config = bench_config(depths=(1,), n_test_points=4)
    split = load_experiment_split("mnist17-binary", config)
    test_points = select_test_points(split, config, "mnist17-binary")
    budgets = (1, 4, 16)

    def run():
        # One engine serves both first-class threat models through the same
        # verify(request) entry point; only the combined removal+flip budget
        # still needs the lower-level extension verifier.
        engine = CertificationEngine(
            max_depth=1, domain="box", timeout_seconds=config.timeout_seconds
        )
        combined_verifier = LabelFlipVerifier(max_depth=1)
        rows = []
        for budget in budgets:
            removal = engine.verify(
                CertificationRequest(
                    split.train, test_points, RemovalPoisoningModel(budget)
                )
            ).certified_count
            flips = engine.verify(
                CertificationRequest(
                    split.train,
                    test_points,
                    LabelFlipModel(budget, n_classes=split.train.n_classes),
                )
            ).certified_count
            combined = sum(
                combined_verifier.verify(
                    split.train, x, flips=budget, removals=budget
                ).robust
                for x in test_points
            )
            rows.append((budget, removal, flips, combined))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["budget", "removal certified", "label-flip certified", "combined certified"]
    )
    for budget, removal, flips, combined in rows:
        table.add_row([budget, removal, flips, combined])
    save_artifact(
        "label_flip_extension",
        f"Label-flip extension on mnist17-binary (|T|={len(split.train)}, "
        f"{len(test_points)} test points, depth 1)\n" + table.render(),
    )

    # Certification against the combined budget is never easier than against
    # the flip-only budget handled by the same abstract learner.
    for _, _, flips, combined in rows:
        assert combined <= flips
    # At the smallest budget the flip verifier certifies something on this
    # large, well-separated dataset.
    assert rows[0][2] > 0
