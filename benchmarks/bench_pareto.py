"""Benchmark for the composite ``(r, f)`` Pareto-frontier sweep.

The frontier sweep is the two-dimensional generalization of the paper's §6.1
budget search: per test point, the set of *maximal* certified
``(n_remove, n_flip)`` pairs under componentwise dominance, found by
staircase descent.  This benchmark runs the sweep on full-scale iris (the
3-class paper benchmark) at depth 1 through a persistent-cache runtime, then
reruns it against the warm cache.

Recorded in ``results/BENCH_pareto.json``: per-point frontiers, probe counts,
and the headline perf numbers — frontier points per second cold versus warm,
and the learner invocations of each pass.

Acceptance bars encoded below:

* the staircase frontiers match brute-force grid certification exactly
  (identical maximal-pair sets on the capped grid);
* the warm-cache rerun performs strictly fewer learner invocations than the
  cold run (it must answer every probe from the cache: zero).
"""

import itertools
import json
import time

from repro.api import CertificationEngine
from repro.experiments.reporting import results_directory, save_artifact
from repro.experiments.runner import load_experiment_split, select_test_points
from repro.poisoning.models import CompositePoisoningModel
from repro.runtime import CertificationRuntime
from repro.utils.tables import TextTable

from conftest import bench_config


def _brute_force_frontier(engine, dataset, x, max_remove, max_flip):
    """Maximal certified pairs by certifying every grid cell (the oracle)."""
    certified = {
        (r, f): engine.certify_point(
            dataset, x, CompositePoisoningModel(r, f)
        ).is_certified
        for r, f in itertools.product(range(max_remove + 1), range(max_flip + 1))
    }
    region = {pair for pair, robust in certified.items() if robust}
    return tuple(
        sorted(
            pair
            for pair in region
            if not any(
                other != pair and other[0] >= pair[0] and other[1] >= pair[1]
                for other in region
            )
        )
    )


def bench_pareto_iris(benchmark, tmp_path):
    config = bench_config(
        n_test_points=4,
        dataset_scales={"iris": 1.0},
        timeout_seconds=30.0,
        frontier_budgets=(3, 2),
    )
    max_remove, max_flip = config.frontier_budgets
    split = load_experiment_split("iris", config)
    test_points = select_test_points(split, config, "iris")

    runtime = CertificationRuntime(tmp_path / "cache")
    engine = CertificationEngine(
        max_depth=1,
        domain="either",
        timeout_seconds=config.timeout_seconds,
        max_disjuncts=100_000,
        runtime=runtime,
    )

    def run_sweep():
        return runtime.pareto_sweep(
            engine,
            split.train,
            test_points,
            max_remove=max_remove,
            max_flip=max_flip,
        )

    cold_start = time.perf_counter()
    cold = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    cold_seconds = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    warm = run_sweep()
    warm_seconds = time.perf_counter() - warm_start

    cold_invocations = sum(outcome.learner_invocations for outcome in cold)
    warm_invocations = sum(outcome.learner_invocations for outcome in warm)
    cold_pps = len(test_points) / cold_seconds if cold_seconds else float("inf")
    warm_pps = len(test_points) / warm_seconds if warm_seconds else float("inf")

    # The staircase must reproduce brute-force grid certification exactly.
    oracle_engine = CertificationEngine(
        max_depth=1,
        domain="either",
        timeout_seconds=config.timeout_seconds,
        max_disjuncts=100_000,
    )
    for row, outcome in zip(test_points, cold):
        oracle = _brute_force_frontier(
            oracle_engine, split.train, row, max_remove, max_flip
        )
        assert tuple(sorted(outcome.frontier)) == oracle, (outcome.frontier, oracle)

    table = TextTable(["point", "frontier (r, f)", "probes", "cold learner runs"])
    per_point = []
    for index, outcome in enumerate(cold):
        pairs = ", ".join(f"({r}, {f})" for r, f in outcome.frontier)
        table.add_row(
            [index, pairs or "uncertified", outcome.probes, outcome.learner_invocations]
        )
        per_point.append(
            {
                "frontier": [[r, f] for r, f in outcome.frontier],
                "probes": outcome.probes,
                "cold_learner_invocations": outcome.learner_invocations,
            }
        )
    save_artifact(
        "pareto_frontier",
        f"Composite (r, f) Pareto frontiers (iris, |T|={len(split.train)}, "
        f"{len(test_points)} test points, depth 1, grid [0, {max_remove}] × "
        f"[0, {max_flip}])\n" + table.render()
        + f"\ncold sweep: {cold_seconds:.2f}s ({cold_pps:.2f} points/s), "
        f"warm cached sweep: {warm_seconds:.2f}s ({warm_pps:.2f} points/s)",
    )
    (results_directory() / "BENCH_pareto.json").write_text(
        json.dumps(
            {
                "dataset": "iris",
                "train_size": len(split.train),
                "test_points": len(test_points),
                "depth": 1,
                "max_remove": max_remove,
                "max_flip": max_flip,
                "frontiers": per_point,
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "cold_points_per_second": cold_pps,
                "warm_points_per_second": warm_pps,
                "cold_learner_invocations": cold_invocations,
                "warm_learner_invocations": warm_invocations,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Warm rerun: identical frontiers, strictly fewer learner invocations
    # (every probe must resolve from the cache).
    assert [outcome.frontier for outcome in warm] == [
        outcome.frontier for outcome in cold
    ]
    assert cold_invocations > 0
    assert warm_invocations < cold_invocations
    assert warm_invocations == 0
