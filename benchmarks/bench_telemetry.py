"""Benchmark for `repro.telemetry`: warm-path overhead and trace coverage.

Two claims are measured:

1. **Counters are cheap enough to leave on**: warm (cache-served) batch
   throughput with the default counters-only telemetry must stay within 5%
   of throughput with telemetry disabled (``REPRO_TELEMETRY=0``).  Span
   tracing is allowed to cost more — it is opt-in.
2. **Traces account for the time**: a traced cold run must attribute at
   least 80% of the root span's wall time to named child spans (ladder
   stages and transformer phases), so a flame view has no large untracked
   residual.

3. **Worker metric shipping is cheap**: in a pooled (``n_jobs=2``) cold
   batch, the parent-side cost of folding worker delta snapshots
   (``MetricsRegistry.merge_snapshot``, the ``worker_merge_seconds``
   histogram) must stay under 5% of the pooled batch's wall time.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_telemetry.py``);
artifacts are ``results/telemetry.txt`` (rendered table) and
``results/BENCH_telemetry.json`` (machine-readable, tracked across PRs).
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import CertificationEngine, CertificationRequest
from repro.core.dataset import Dataset
from repro.experiments.reporting import results_directory, save_artifact
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import CertificationRuntime
from repro.telemetry import metrics, tracing
from repro.utils.tables import TextTable

ROWS = 512
BATCH_POINTS = 64
POOLED_POINTS = 16
REPETITIONS = 9
MAX_COUNTER_OVERHEAD = 0.05
MIN_ATTRIBUTED_FRACTION = 0.95
MAX_MERGE_FRACTION = 0.05


def _dataset() -> Dataset:
    rng = np.random.default_rng(23)
    per_class = ROWS // 2
    X = np.concatenate(
        [rng.normal(0.0, 1.0, per_class), rng.normal(10.0, 1.0, per_class)]
    ).reshape(-1, 1)
    y = np.concatenate([np.zeros(per_class), np.ones(per_class)]).astype(np.int64)
    return Dataset(X=X, y=y, n_classes=2, name="telemetry-bench")


def _request(dataset: Dataset) -> CertificationRequest:
    points = np.linspace(-1.0, 12.0, BATCH_POINTS).reshape(-1, 1)
    return CertificationRequest(dataset, points, RemovalPoisoningModel(2))


def _warm_seconds(cache_dir: Path, request: CertificationRequest) -> float:
    """Best-of-N wall time for one fully cache-served batch."""
    engine = CertificationEngine(
        max_depth=1,
        domain="box",
        runtime=CertificationRuntime(cache_dir, shared_memory=False),
    )
    # One untimed pass to populate the runtime's warm plans and page sqlite.
    engine.verify(request)
    best = float("inf")
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        report = engine.verify(request)
        best = min(best, time.perf_counter() - start)
        assert report.runtime_stats["learner_invocations"] == 0, (
            "warm arm unexpectedly ran the learner"
        )
    return best


def bench_warm_overhead(cache_dir: Path) -> dict:
    """Measure warm throughput: telemetry off vs counters-on vs spans-on."""
    dataset = _dataset()
    request = _request(dataset)

    # Populate the verdict cache once, counters on (the default).
    cold_engine = CertificationEngine(
        max_depth=1,
        domain="box",
        runtime=CertificationRuntime(cache_dir, shared_memory=False),
    )
    cold_start = time.perf_counter()
    cold_engine.verify(request)
    cold_seconds = time.perf_counter() - cold_start

    registry = metrics.get_registry()
    arms = {}
    try:
        registry.set_enabled(False)
        arms["telemetry_off"] = _warm_seconds(cache_dir, request)
        registry.set_enabled(True)
        arms["counters_on"] = _warm_seconds(cache_dir, request)
        tracing.enable_spans(True)
        arms["spans_on"] = _warm_seconds(cache_dir, request)
    finally:
        tracing.enable_spans(False)
        registry.set_enabled(True)
    return {"cold_seconds": cold_seconds, **arms}


def bench_trace_coverage() -> dict:
    """A traced cold run must attribute >=95% of its wall time to spans."""
    dataset = _dataset()
    request = _request(dataset)
    engine = CertificationEngine(max_depth=1, domain="box")
    tracing.clear_completed()
    tracing.enable_spans(True)
    try:
        report = engine.verify(request)
    finally:
        tracing.enable_spans(False)
    trace = report.runtime_stats["trace"]

    def covered(node: dict) -> float:
        children = sum(child["duration_seconds"] for child in node["children"])
        return min(1.0, children / node["duration_seconds"])

    root_fraction = covered(trace)
    # Per-point coverage only makes sense for the point-delivery spans; the
    # batch-level leaves (plan build, scheduler dispatch) have no children.
    per_point = [covered(child) for child in trace["children"] if child["children"]]
    return {
        "root_span": trace["name"],
        "root_seconds": trace["duration_seconds"],
        "attributed_fraction": root_fraction,
        "min_point_fraction": min(per_point),
        "spans": sum(1 for _ in _walk(trace)),
    }


def _walk(node: dict):
    yield node
    for child in node["children"]:
        yield from _walk(child)


def bench_worker_merge() -> dict:
    """Parent-side cost of merging worker metric deltas in a pooled batch.

    Returns an empty dict when the platform cannot run a process pool, so
    the benchmark degrades gracefully instead of failing on exotic CI.
    """
    dataset = _dataset()
    points = np.linspace(-1.0, 12.0, POOLED_POINTS).reshape(-1, 1)
    request = CertificationRequest(dataset, points, RemovalPoisoningModel(2))
    engine = CertificationEngine(max_depth=1, domain="box")
    registry = metrics.get_registry()

    def merge_stats(snapshot):
        series = snapshot.get("worker_merge_seconds", {}).get("series", [])
        if not series:
            return 0, 0.0
        return series[0]["count"], series[0]["sum"]

    before_count, before_sum = merge_stats(registry.snapshot())
    start = time.perf_counter()
    try:
        report = engine.verify(request, n_jobs=2)
    except OSError:
        return {}
    wall = time.perf_counter() - start
    after_count, after_sum = merge_stats(registry.snapshot())
    merges = after_count - before_count
    if merges == 0:
        # The pool fell back to serial (broken executor); nothing to report.
        return {}
    merge_seconds = after_sum - before_sum
    assert report.total == POOLED_POINTS
    return {
        "pooled_points": POOLED_POINTS,
        "n_jobs": 2,
        "pooled_wall_seconds": wall,
        "merges": merges,
        "merge_seconds": merge_seconds,
        "merge_seconds_per_task": merge_seconds / merges,
        "merge_fraction_of_wall": merge_seconds / wall if wall > 0 else 0.0,
    }


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="bench-telemetry-"))
    try:
        overhead = bench_warm_overhead(scratch / "cache")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    coverage = bench_trace_coverage()
    worker_merge = bench_worker_merge()

    off = overhead["telemetry_off"]
    counters_overhead = overhead["counters_on"] / off - 1.0
    spans_overhead = overhead["spans_on"] / off - 1.0

    table = TextTable(["arm", "points/s", "seconds", "overhead"])
    table.add_row(["cold (counters on)", f"{BATCH_POINTS / overhead['cold_seconds']:.1f}",
                   f"{overhead['cold_seconds']:.4f}", "-"])
    table.add_row(["warm, telemetry off", f"{BATCH_POINTS / off:.1f}",
                   f"{off:.4f}", "baseline"])
    table.add_row(["warm, counters on", f"{BATCH_POINTS / overhead['counters_on']:.1f}",
                   f"{overhead['counters_on']:.4f}", f"{counters_overhead:+.2%}"])
    table.add_row(["warm, spans on", f"{BATCH_POINTS / overhead['spans_on']:.1f}",
                   f"{overhead['spans_on']:.4f}", f"{spans_overhead:+.2%}"])
    text = (
        f"Telemetry overhead: {BATCH_POINTS}-point warm batches on "
        f"{ROWS}-row {_dataset().name} (best of {REPETITIONS})\n"
        + table.render()
        + f"\n\ntraced cold run: {coverage['spans']} spans, "
        f"{coverage['attributed_fraction']:.1%} of root wall time attributed"
    )
    if worker_merge:
        text += (
            f"\npooled ({worker_merge['n_jobs']} workers, "
            f"{worker_merge['pooled_points']} points): "
            f"{worker_merge['merges']} delta merges cost "
            f"{worker_merge['merge_seconds'] * 1000:.2f} ms, "
            f"{worker_merge['merge_fraction_of_wall']:.2%} of "
            f"{worker_merge['pooled_wall_seconds']:.3f} s wall"
        )
    else:
        text += "\npooled worker-merge arm skipped (no process pool available)"
    print(text)
    save_artifact("telemetry", text)

    payload = {
        "dataset_rows": ROWS,
        "batch_points": BATCH_POINTS,
        "repetitions": REPETITIONS,
        "warm_seconds": {
            "telemetry_off": off,
            "counters_on": overhead["counters_on"],
            "spans_on": overhead["spans_on"],
        },
        "cold_seconds": overhead["cold_seconds"],
        "points_per_second": {
            "telemetry_off": BATCH_POINTS / off,
            "counters_on": BATCH_POINTS / overhead["counters_on"],
            "spans_on": BATCH_POINTS / overhead["spans_on"],
        },
        "counters_overhead": counters_overhead,
        "spans_overhead": spans_overhead,
        "max_counter_overhead": MAX_COUNTER_OVERHEAD,
        "trace_coverage": coverage,
        "worker_merge": worker_merge,
        "max_merge_fraction": MAX_MERGE_FRACTION,
    }
    (results_directory() / "BENCH_telemetry.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    failures = []
    if counters_overhead > MAX_COUNTER_OVERHEAD:
        failures.append(
            f"counters-on warm overhead {counters_overhead:.2%} exceeds "
            f"{MAX_COUNTER_OVERHEAD:.0%}"
        )
    if coverage["attributed_fraction"] < MIN_ATTRIBUTED_FRACTION:
        failures.append(
            f"traced cold run attributes only "
            f"{coverage['attributed_fraction']:.1%} of root wall time"
        )
    if worker_merge and worker_merge["merge_fraction_of_wall"] > MAX_MERGE_FRACTION:
        failures.append(
            f"worker delta merges cost "
            f"{worker_merge['merge_fraction_of_wall']:.2%} of pooled wall "
            f"time, over the {MAX_MERGE_FRACTION:.0%} budget"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
