"""Benchmark regenerating Table 1 (dataset metrics and test accuracies).

Paper artifact: Table 1 — five datasets, decision-tree test accuracy at
depths 1 through 4.
"""

from repro.experiments.reporting import save_artifact
from repro.experiments.table1 import compute_table1, render_table1

from conftest import bench_config


def bench_table1_accuracies(benchmark):
    config = bench_config()

    def run():
        return compute_table1(config, depths=(1, 2, 3, 4))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("table1", render_table1(rows))

    assert [row.dataset for row in rows] == [
        "iris",
        "mammography",
        "wdbc",
        "mnist17-binary",
        "mnist17-real",
    ]
    # The qualitative shape of Table 1: every learned tree is far better than
    # chance, and the MNIST variants reach very high accuracy.
    for row in rows:
        chance = 1.0 / row.n_classes
        assert row.accuracy_at(2) > chance + 0.2
    assert rows[3].accuracy_at(2) > 0.9
    assert rows[4].accuracy_at(2) > 0.9
