"""Benchmark for the `repro.runtime` scaling layer.

Two claims are measured:

1. **Shared-memory dataset plane**: pool workers that attach a published
   ≥2k-row dataset from shared memory must receive it faster than workers
   that unpickle a private copy.  The comparison isolates the data plane —
   identical pools, identical trivial per-task work, only the dataset
   transport differs — so the certification compute cannot mask the
   difference.
2. **Persistent certification cache**: rerunning an identical batch against
   a warm cache must perform **zero** learner invocations and finish far
   faster than the cold run.

Artifacts: ``results/runtime_cache.txt`` (rendered table) and
``results/BENCH_runtime_cache.json`` (machine-readable, tracked across PRs).
"""

import json
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

import numpy as np
import pytest

from repro.api import CertificationEngine, CertificationRequest
from repro.core.dataset import Dataset
from repro.experiments.reporting import results_directory, save_artifact
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import CertificationRuntime, SharedDatasetHandle, default_store
from repro.utils.tables import TextTable

#: Size of the data-plane benchmark dataset (rows × features ≈ 4 MB of X).
PLANE_ROWS = 2048
PLANE_FEATURES = 256
POOL_WORKERS = 2
PLANE_ROUNDS = 5


def _plane_dataset() -> Dataset:
    rng = np.random.default_rng(7)
    X = rng.normal(size=(PLANE_ROWS, PLANE_FEATURES))
    y = (X[:, 0] > 0).astype(np.int64)
    return Dataset(X=X, y=y, n_classes=2, name="plane-bench")


def _certification_dataset() -> Dataset:
    """A ≥2k-row two-cluster set cheap enough to certify many points on."""
    rng = np.random.default_rng(11)
    per_class = PLANE_ROWS // 2
    X = np.concatenate(
        [rng.normal(0.0, 1.0, per_class), rng.normal(10.0, 1.0, per_class)]
    ).reshape(-1, 1)
    y = np.concatenate(
        [np.zeros(per_class), np.ones(per_class)]
    ).astype(np.int64)
    return Dataset(X=X, y=y, n_classes=2, name="cache-bench")


def _touch_dataset(payload) -> float:
    """Trivial worker task: materialize the dataset and read one element."""
    dataset = payload.attach() if isinstance(payload, SharedDatasetHandle) else payload
    return float(dataset.X[0, 0]) + len(dataset)


def _time_dispatch(payload) -> float:
    """Wall-clock of a fresh pool receiving ``payload`` in every worker."""
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=POOL_WORKERS) as executor:
        checks = list(executor.map(_touch_dataset, [payload] * POOL_WORKERS))
    elapsed = time.perf_counter() - start
    assert all(np.isfinite(check) for check in checks)
    return elapsed


def bench_runtime_shared_memory_and_cache(benchmark, tmp_path):
    dataset = _plane_dataset()
    handle = default_store().publish(dataset)
    if handle is None:
        pytest.skip("shared memory unavailable on this host")

    # -- 1. data plane: pickled dataset vs shared-memory handle -------------
    try:
        pickled_seconds = min(_time_dispatch(dataset) for _ in range(PLANE_ROUNDS))
        shared_seconds = min(_time_dispatch(handle) for _ in range(PLANE_ROUNDS))
    except (OSError, BrokenExecutor):
        pytest.skip("process pools unavailable on this host")

    # -- 2. verdict cache: cold run vs warm rerun ---------------------------
    cert_dataset = _certification_dataset()
    engine = CertificationEngine(
        max_depth=1,
        domain="box",
        timeout_seconds=30.0,
        runtime=CertificationRuntime(tmp_path / "cache"),
    )
    points = np.linspace(-1.0, 12.0, 16).reshape(-1, 1)
    request = CertificationRequest(cert_dataset, points, RemovalPoisoningModel(2))

    cold_start = time.perf_counter()
    cold = engine.verify(request)
    cold_seconds = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    warm = benchmark.pedantic(lambda: engine.verify(request), rounds=1, iterations=1)
    warm_seconds = time.perf_counter() - warm_start

    table = TextTable(["measurement", "value"])
    table.add_row(["dataset", f"{PLANE_ROWS}x{PLANE_FEATURES} (~{dataset.X.nbytes >> 20} MB)"])
    table.add_row(["pool dispatch, pickled (s)", f"{pickled_seconds:.4f}"])
    table.add_row(["pool dispatch, shared memory (s)", f"{shared_seconds:.4f}"])
    table.add_row(["dispatch speedup", f"{pickled_seconds / shared_seconds:.2f}x"])
    table.add_row(["cold batch (s)", f"{cold_seconds:.4f}"])
    table.add_row(["warm batch (s)", f"{warm_seconds:.4f}"])
    table.add_row(["warm learner invocations", warm.runtime_stats["learner_invocations"]])
    save_artifact("runtime_cache", "Runtime data plane + verdict cache\n" + table.render())
    payload = {
        "dataset_rows": PLANE_ROWS,
        "dataset_features": PLANE_FEATURES,
        "pool_workers": POOL_WORKERS,
        "pickled_dispatch_seconds": pickled_seconds,
        "shared_memory_dispatch_seconds": shared_seconds,
        "cold_batch_seconds": cold_seconds,
        "warm_batch_seconds": warm_seconds,
        "warm_learner_invocations": warm.runtime_stats["learner_invocations"],
        "warm_hit_rate": warm.runtime_stats["hit_rate"],
    }
    (results_directory() / "BENCH_runtime_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # The shared-memory plane must beat per-worker pickling on a multi-MB set.
    assert shared_seconds < pickled_seconds
    # A warm cache answers the identical batch without touching the learners.
    assert warm.runtime_stats["learner_invocations"] == 0
    assert [r.status for r in warm.results] == [r.status for r in cold.results]
    assert warm_seconds < cold_seconds
