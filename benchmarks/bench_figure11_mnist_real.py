"""Benchmark regenerating Figure 11 (MNIST-1-7-Real performance panels).

Paper artifact: Figure 11 — the real-valued-pixel MNIST variant.  The paper's
qualitative finding is that real-valued features are dramatically more
expensive than boolean ones (many instances time out) because the learner
must reason about data-dependent thresholds via symbolic predicates.
"""

from repro.experiments.perf_figures import (
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_figure11_mnist_real(benchmark):
    config = bench_config(depths=(1, 2), n_test_points=3)

    def run():
        return compute_performance_figure("mnist17-real", config)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("figure11_mnist_real", render_performance_figure(points))
    assert points
    assert all(point.attempted == 3 for point in points)


def bench_binary_vs_real_cost(benchmark):
    """The headline Figure 7-vs-11 contrast: real features cost much more."""
    config = bench_config(depths=(1,), n_test_points=3, domains=("disjuncts",))

    def run():
        binary = compute_performance_figure("mnist17-binary", config)
        real = compute_performance_figure("mnist17-real", config)
        return binary, real

    binary, real = benchmark.pedantic(run, rounds=1, iterations=1)
    binary_time = sum(point.average_seconds for point in binary) / len(binary)
    real_time = sum(point.average_seconds for point in real) / len(real)
    save_artifact(
        "binary_vs_real_cost",
        "average per-point verification time (s)\n"
        f"mnist17-binary: {binary_time:.4f}\nmnist17-real:   {real_time:.4f}",
    )
    # Real-valued pixels must be more expensive per instance than boolean ones
    # (the generated binary dataset is also larger, which only strengthens the
    # comparison when the inequality still holds).
    assert real_time > binary_time
