"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index) at a scale small enough for
continuous benchmarking, and writes the rendered artifact under
``benchmarks/results/`` so the numbers recorded in EXPERIMENTS.md can be
re-derived at any time.

Scale note: dataset sizes, depths, and poisoning grids here are deliberately
reduced relative to §6 of the paper (this is a pure-Python reproduction).
``repro.experiments.config.paper_scale_config`` documents the full-scale
parameters for users willing to spend the compute.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


def bench_config(**overrides) -> ExperimentConfig:
    """The shared reduced-scale configuration used by the benchmark modules."""
    config = ExperimentConfig(
        seed=0,
        depths=(1, 2),
        n_test_points=5,
        domains=("box", "disjuncts"),
        poisoning_amounts={
            "iris": (1, 2, 4, 8),
            "mammography": (1, 4, 16, 64),
            "wdbc": (1, 4, 16, 64),
            "mnist17-binary": (1, 8, 64),
            "mnist17-real": (1, 8),
        },
        dataset_scales={
            "iris": 1.0,
            "mammography": 1.0,
            "wdbc": 0.6,
            "mnist17-binary": 0.05,
            "mnist17-real": 0.02,
        },
        timeout_seconds=15.0,
        max_disjuncts=2048,
    )
    return config.with_overrides(**overrides) if overrides else config


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return bench_config()
