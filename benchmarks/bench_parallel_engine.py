"""Benchmark for the engine's parallel batch certification.

The unified :class:`repro.api.CertificationEngine` certifies the points of a
batch request on a process pool (``n_jobs=N``) while preserving input order;
since the `repro.runtime` subsystem, pool workers attach the training set
from shared memory by default instead of unpickling a private copy.  This
benchmark certifies ≥32 Iris test points three ways — serially, on a pool
with the pickled-dataset baseline, and on a pool with the shared-memory
plane — and records wall-clock plus points/sec for each.  The statuses must
be identical across all three (the acceptance bar of the API redesign), and
on multi-core hosts the pooled runs must be measurably faster than serial.

Besides the rendered table, the run writes ``results/BENCH_parallel.json``
(points/sec per mode) so the performance trajectory is tracked across PRs.
"""

import json
import os
import time

import numpy as np

from repro.api import CertificationEngine, CertificationRequest
from repro.experiments.reporting import results_directory, save_artifact
from repro.experiments.runner import load_experiment_split
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import CertificationRuntime
from repro.utils.tables import TextTable

from conftest import bench_config


def bench_parallel_batch_iris(benchmark):
    config = bench_config(timeout_seconds=30.0)
    split = load_experiment_split("iris", config)
    # Tile the test split up to 32 points so the batch is large enough for the
    # pool to amortize its startup cost; jitter the copies so the runtime's
    # duplicate-point dedup cannot shortcut any mode (all three must certify
    # all 32 points for the comparison to be fair).
    reps = -(-32 // len(split.test))  # ceil division
    points = np.tile(split.test.X, (reps, 1))[:32]
    points = points + np.random.default_rng(0).normal(0.0, 1e-9, size=points.shape)
    request = CertificationRequest(split.train, points, RemovalPoisoningModel(4))

    # More workers than cores just multiplies scheduler churn and per-worker
    # pool-initializer cost — clamp the pooled modes to the host.
    n_jobs = min(4, os.cpu_count() or 1)

    def make_engine(runtime=None):
        return CertificationEngine(
            max_depth=2,
            domain="either",
            timeout_seconds=config.timeout_seconds,
            runtime=runtime,
        )

    def timed(engine, n_jobs):
        start = time.perf_counter()
        report = engine.verify(request, n_jobs=n_jobs)
        return report, time.perf_counter() - start

    serial_report, serial_seconds = timed(make_engine(), 1)
    # Pickled-dataset pool: the pre-runtime baseline, kept as the comparison
    # point for the shared-memory plane.
    pickled_report, pickled_seconds = timed(
        make_engine(CertificationRuntime(shared_memory=False)), n_jobs
    )
    shared_engine = make_engine()
    shared_start = time.perf_counter()
    shared_report = benchmark.pedantic(
        lambda: shared_engine.verify(request, n_jobs=n_jobs), rounds=1, iterations=1
    )
    shared_seconds = time.perf_counter() - shared_start

    modes = [
        ("serial", serial_report, serial_seconds),
        ("pool (pickled dataset)", pickled_report, pickled_seconds),
        ("pool (shared memory)", shared_report, shared_seconds),
    ]
    table = TextTable(["mode", "points", "certified", "wall-clock (s)", "points/s"])
    points_per_second = {}
    for mode, report, seconds in modes:
        rate = report.total / seconds if seconds else float("inf")
        points_per_second[mode] = rate
        table.add_row(
            [mode, report.total, report.certified_count, f"{seconds:.3f}", f"{rate:.2f}"]
        )
    save_artifact(
        "parallel_engine",
        f"Parallel batch certification (iris, depth 2, n_jobs={n_jobs}, "
        f"{os.cpu_count()} CPUs)\n"
        + table.render(),
    )
    (results_directory() / "BENCH_parallel.json").write_text(
        json.dumps(
            {
                "dataset": "iris",
                "points": serial_report.total,
                "n_jobs": n_jobs,
                "cpus": os.cpu_count(),
                "points_per_second": {
                    "serial": points_per_second["serial"],
                    "pooled": points_per_second["pool (pickled dataset)"],
                    "shared_memory": points_per_second["pool (shared memory)"],
                },
                "wall_clock_seconds": {
                    "serial": serial_seconds,
                    "pooled": pickled_seconds,
                    "shared_memory": shared_seconds,
                },
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Order-preserving parity: every mode must agree point-for-point.
    for _, report, _ in modes[1:]:
        assert [r.status for r in report.results] == [
            r.status for r in serial_report.results
        ]
        assert report.certified_count == serial_report.certified_count
    assert serial_report.total == 32
    # On multi-core hosts the pools must beat the serial loop outright; on a
    # single CPU there is nothing to win, so only require bounded overhead.
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        assert pickled_seconds < serial_seconds
        assert shared_seconds < serial_seconds
    else:
        assert pickled_seconds < serial_seconds * 3.0
        assert shared_seconds < serial_seconds * 3.0
