"""Benchmark for the engine's parallel batch certification.

The unified :class:`repro.api.CertificationEngine` certifies the points of a
batch request on a process pool (``n_jobs=N``) while preserving input order.
This benchmark certifies ≥32 Iris test points serially and with ``n_jobs=4``
and records both wall-clock times; the statuses must be identical (the
acceptance bar of the API redesign), and on multi-core hosts the parallel
batch must be measurably faster.
"""

import os
import time

import numpy as np

from repro.api import CertificationEngine, CertificationRequest
from repro.experiments.reporting import save_artifact
from repro.experiments.runner import load_experiment_split
from repro.poisoning.models import RemovalPoisoningModel
from repro.utils.tables import TextTable

from conftest import bench_config


def bench_parallel_batch_iris(benchmark):
    config = bench_config(timeout_seconds=30.0)
    split = load_experiment_split("iris", config)
    # Tile the test split up to 32 points so the batch is large enough for the
    # pool to amortize its startup cost.
    reps = -(-32 // len(split.test))  # ceil division
    points = np.tile(split.test.X, (reps, 1))[:32]
    engine = CertificationEngine(
        max_depth=2, domain="either", timeout_seconds=config.timeout_seconds
    )
    request = CertificationRequest(split.train, points, RemovalPoisoningModel(4))

    def serial():
        return engine.verify(request, n_jobs=1)

    serial_start = time.perf_counter()
    serial_report = serial()
    serial_seconds = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel_report = benchmark.pedantic(
        lambda: engine.verify(request, n_jobs=4), rounds=1, iterations=1
    )
    parallel_seconds = time.perf_counter() - parallel_start

    table = TextTable(["mode", "points", "certified", "wall-clock (s)"])
    table.add_row(["serial", serial_report.total, serial_report.certified_count, serial_seconds])
    table.add_row(
        ["n_jobs=4", parallel_report.total, parallel_report.certified_count, parallel_seconds]
    )
    save_artifact(
        "parallel_engine",
        f"Parallel batch certification (iris, depth 2, n=4, {os.cpu_count()} CPUs)\n"
        + table.render(),
    )

    # Order-preserving parity: the parallel batch must agree point-for-point.
    assert [r.status for r in parallel_report.results] == [
        r.status for r in serial_report.results
    ]
    assert parallel_report.certified_count == serial_report.certified_count
    assert parallel_report.total == 32
    # On multi-core hosts the pool must beat the serial loop outright; on a
    # single CPU there is nothing to win, so only require bounded overhead.
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        assert parallel_seconds < serial_seconds
    else:
        assert parallel_seconds < serial_seconds * 3.0
