"""Benchmark regenerating Figure 9 (Mammographic Masses performance panels)."""

from repro.experiments.perf_figures import (
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_figure9_mammography(benchmark):
    config = bench_config(depths=(1, 2), n_test_points=5)

    def run():
        return compute_performance_figure("mammography", config)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("figure9_mammography", render_performance_figure(points))

    assert points
    # The certified count never increases with the poisoning amount within a
    # (domain, depth) series.
    series = {}
    for point in points:
        series.setdefault((point.domain, point.depth), []).append(point)
    for cells in series.values():
        cells.sort(key=lambda p: p.poisoning_amount)
        verified = [cell.verified for cell in cells]
        assert all(b <= a for a, b in zip(verified, verified[1:]))
