"""Cold-path core benchmark: batch kernels + warm-started budget probes.

Measures the two layers of the vectorized/incremental learner core against
the pre-vectorization baseline (0.5 points/sec on this workload, recorded
before the batch interval kernels and the split-table plane landed):

1. **Cold throughput** — a fresh engine with every split-table plan cleared
   certifies 32 iris points (depth 2, ``domain="either"``, removal budget 4)
   from scratch.  The speedup over the 0.5 pts/s baseline is the headline
   number for the batch kernels; per-phase ``learner_phase_seconds`` deltas
   attribute where the remaining cold time goes.
2. **Probe-suffix reuse** — the same points re-certified on the now-warm
   engine (identical verdicts required), plus a removal-budget ladder per
   point, report ``trace_reuse_fraction``: the share of ``filter#`` steps
   served by replaying a prior probe's trace instead of re-running the
   split/join kernels.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_cold_core.py``);
exits non-zero — the CI smoke gate — if the cold speedup falls below 5× or
the warm arms show zero trace reuse.  Writes
``results/BENCH_cold_core.json``.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.api import CertificationEngine, CertificationRequest
from repro.core import split_plan
from repro.experiments.reporting import results_directory, save_artifact
from repro.poisoning.models import RemovalPoisoningModel
from repro.telemetry import metrics
from repro.utils.tables import TextTable

from conftest import bench_config

#: Measured on the growth seed (pre-vectorization, pure per-candidate loops)
#: for this exact workload: 32 iris points, depth 2, either-domain ladder,
#: removal budget 4, 30 s timeout.
BASELINE_POINTS_PER_SECOND = 0.5
MIN_COLD_SPEEDUP = 5.0
TARGET_COLD_SPEEDUP = 10.0
LADDER_POINTS = 4
LADDER_BUDGETS = tuple(range(0, 9))


def _workload():
    config = bench_config(timeout_seconds=30.0)
    split = load_split(config)
    reps = -(-32 // len(split.test))
    points = np.tile(split.test.X, (reps, 1))[:32]
    points = points + np.random.default_rng(0).normal(0.0, 1e-9, size=points.shape)
    return split.train, points, config


def load_split(config):
    from repro.experiments.runner import load_experiment_split

    return load_experiment_split("iris", config)


def _engine(config) -> CertificationEngine:
    return CertificationEngine(
        max_depth=2, domain="either", timeout_seconds=config.timeout_seconds
    )


def _phase_seconds(before: dict, after: dict) -> dict:
    """Per-(stage, phase) wall-second deltas of ``learner_phase_seconds``."""

    def table(snapshot: dict) -> dict:
        out = {}
        for series in snapshot.get("learner_phase_seconds", {}).get("series", []):
            labels = series["labels"]
            out[(labels["stage"], labels["phase"])] = float(series["sum"])
        return out

    first, second = table(before), table(after)
    return {
        f"{stage}/{phase}": second[(stage, phase)] - first.get((stage, phase), 0.0)
        for (stage, phase) in second
        if second[(stage, phase)] - first.get((stage, phase), 0.0) > 0.0
    }


def main() -> int:
    dataset, points, config = _workload()
    request = CertificationRequest(dataset, points, RemovalPoisoningModel(4))
    registry = metrics.get_registry()

    # --- cold arm: no plans, no traces, fresh engine -----------------------
    split_plan.clear_plans()
    engine = _engine(config)
    before = registry.snapshot()
    cold_start = time.perf_counter()
    cold_report = engine.verify(request)
    cold_seconds = time.perf_counter() - cold_start
    phases = _phase_seconds(before, registry.snapshot())
    cold_pps = cold_report.total / cold_seconds
    speedup = cold_pps / BASELINE_POINTS_PER_SECOND
    # split_table time nests inside best_split (node tables are built on
    # demand while scoring), so the attribution sum skips it to avoid double
    # counting.
    attributed = sum(
        seconds for key, seconds in phases.items() if not key.endswith("/split_table")
    )
    consume = engine.consume_trace_stats()
    cold_trace_steps, cold_trace_reused = consume

    # --- warm rerun: same engine, same budget — verdicts must be identical -
    warm_start = time.perf_counter()
    warm_report = engine.verify(request)
    warm_seconds = time.perf_counter() - warm_start
    warm_steps, warm_reused = engine.consume_trace_stats()
    identical = [r.status for r in warm_report.results] == [
        r.status for r in cold_report.results
    ]

    # --- probe ladder: removal budgets 0..8 per point ----------------------
    ladder = []
    for row in points[:LADDER_POINTS]:
        for budget in LADDER_BUDGETS:
            engine.certify_point(dataset, row, RemovalPoisoningModel(budget))
        steps, reused = engine.consume_trace_stats()
        ladder.append({"steps": steps, "reused": reused,
                       "fraction": reused / steps if steps else 0.0})
    ladder_steps = sum(p["steps"] for p in ladder)
    ladder_reused = sum(p["reused"] for p in ladder)
    ladder_fraction = ladder_reused / ladder_steps if ladder_steps else 0.0

    status_counts: dict = {}
    for result in cold_report.results:
        status_counts[result.status.value] = (
            status_counts.get(result.status.value, 0) + 1
        )

    table = TextTable(["arm", "points", "wall-clock (s)", "points/s", "trace reuse"])
    table.add_row(["cold (plans cleared)", cold_report.total, f"{cold_seconds:.3f}",
                   f"{cold_pps:.2f}", f"{cold_trace_reused}/{cold_trace_steps}"])
    table.add_row(["warm rerun", warm_report.total, f"{warm_seconds:.3f}",
                   f"{warm_report.total / warm_seconds:.2f}",
                   f"{warm_reused}/{warm_steps}"])
    table.add_row([f"budget ladder 0..{LADDER_BUDGETS[-1]} x{LADDER_POINTS}",
                   LADDER_POINTS, "-", "-", f"{ladder_reused}/{ladder_steps}"])
    phase_table = TextTable(["stage/phase", "seconds", "share of cold wall"])
    for key, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
        phase_table.add_row([key, f"{seconds:.4f}", f"{seconds / cold_seconds:.1%}"])
    text = (
        f"Cold-path core (iris, depth 2, either ladder, n=4): "
        f"{cold_pps:.2f} pts/s cold = {speedup:.1f}x the "
        f"{BASELINE_POINTS_PER_SECOND} pts/s pre-vectorization baseline "
        f"(target {TARGET_COLD_SPEEDUP:.0f}x, floor {MIN_COLD_SPEEDUP:.0f}x)\n"
        + table.render()
        + f"\nverdicts identical cold vs warm: {identical} ({status_counts})\n\n"
        f"learner_phase_seconds attribution "
        f"({attributed / cold_seconds:.1%} of cold wall):\n"
        + phase_table.render()
    )
    print(text)
    save_artifact("cold_core", text)

    payload = {
        "dataset": "iris",
        "points": cold_report.total,
        "max_depth": 2,
        "domain": "either",
        "removal_budget": 4,
        "baseline_points_per_second": BASELINE_POINTS_PER_SECOND,
        "min_cold_speedup": MIN_COLD_SPEEDUP,
        "target_cold_speedup": TARGET_COLD_SPEEDUP,
        "cold": {
            "wall_clock_seconds": cold_seconds,
            "points_per_second": cold_pps,
            "speedup_vs_baseline": speedup,
            "trace_steps": cold_trace_steps,
            "trace_reused": cold_trace_reused,
        },
        "warm_rerun": {
            "wall_clock_seconds": warm_seconds,
            "points_per_second": warm_report.total / warm_seconds,
            "trace_steps": warm_steps,
            "trace_reused": warm_reused,
            "trace_reuse_fraction": warm_reused / warm_steps if warm_steps else 0.0,
            "verdicts_identical_to_cold": identical,
        },
        "budget_ladder": {
            "budgets": list(LADDER_BUDGETS),
            "points": LADDER_POINTS,
            "per_point": ladder,
            "trace_reuse_fraction": ladder_fraction,
        },
        "status_counts": status_counts,
        "learner_phase_seconds": phases,
        "attributed_fraction_of_cold_wall": attributed / cold_seconds,
    }
    (results_directory() / "BENCH_cold_core.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    failures = []
    if speedup < MIN_COLD_SPEEDUP:
        failures.append(
            f"cold throughput {cold_pps:.2f} pts/s is only {speedup:.1f}x the "
            f"{BASELINE_POINTS_PER_SECOND} pts/s baseline (floor "
            f"{MIN_COLD_SPEEDUP:.0f}x)"
        )
    if not identical:
        failures.append("warm rerun verdicts differ from the cold run")
    if warm_reused == 0 and ladder_reused == 0:
        failures.append("trace_reuse_fraction == 0: warm-started probes never "
                        "replayed a single filter step")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
