"""Benchmark comparing Antidote against the naïve enumeration baseline (§2).

On the 13-element overview dataset both approaches decide 2-poisoning
robustness exactly/soundly, but enumeration already needs 92 retrainings; the
benchmark records how the enumeration count explodes with ``n`` while the
abstract verifier's cost stays flat — the scaling argument at the heart of
the paper.
"""

from repro.datasets.toy import figure2_dataset
from repro.experiments.reporting import save_artifact
from repro.utils.tables import TextTable
from repro.utils.timing import Stopwatch
from repro.verify.enumeration import count_poisoned_datasets, verify_by_enumeration
from repro.verify.robustness import PoisoningVerifier


def bench_abstract_vs_enumeration_figure2(benchmark):
    dataset = figure2_dataset()
    x = [5.0]
    amounts = (1, 2, 3, 4)
    verifier = PoisoningVerifier(max_depth=1, domain="either")

    def run_abstract():
        return [verifier.verify(dataset, x, n) for n in amounts]

    abstract_results = benchmark.pedantic(run_abstract, rounds=3, iterations=1)

    table = TextTable(
        [
            "poisoning n",
            "datasets to enumerate",
            "enumeration time (s)",
            "enumeration robust",
            "abstract time (s)",
            "abstract status",
        ]
    )
    for n, abstract in zip(amounts, abstract_results):
        watch = Stopwatch().start()
        enumeration = verify_by_enumeration(
            dataset, x, n, max_depth=1, stop_at_first_counterexample=False
        )
        enumeration_seconds = watch.stop()
        table.add_row(
            [
                n,
                count_poisoned_datasets(len(dataset), n),
                enumeration_seconds,
                enumeration.robust,
                abstract.elapsed_seconds,
                abstract.status.value,
            ]
        )
        # Soundness cross-check: the abstract verifier never certifies a
        # configuration enumeration refutes.
        if abstract.is_certified:
            assert enumeration.robust

    save_artifact("enumeration_baseline", table.render())
    assert count_poisoned_datasets(len(dataset), 2) == 92
