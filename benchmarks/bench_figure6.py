"""Benchmark regenerating Figure 6 (fraction verified vs poisoning amount).

Paper artifact: Figure 6 — for every dataset and depth, the fraction of test
points proven robust as the poisoning amount grows (either abstract domain
counts as success).
"""

from repro.experiments.figure6 import compute_figure6, render_figure6
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_figure6_fraction_verified(benchmark):
    config = bench_config(depths=(1, 2), n_test_points=4)

    def run():
        return compute_figure6(config)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("figure6", render_figure6(series))

    datasets = {line.dataset for line in series}
    assert len(datasets) == 5
    # Shape check 1: fractions never increase with the poisoning amount.
    for line in series:
        fractions = [fraction for _, fraction in line.points]
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))
    # Shape check 2: the large, well-separated MNIST-binary dataset tolerates
    # far more poisoning than the small UCI-like datasets (the paper's
    # headline observation).
    mnist = [line for line in series if line.dataset == "mnist17-binary"]
    assert any(line.fraction_at(8) and line.fraction_at(8) > 0 for line in mnist)
