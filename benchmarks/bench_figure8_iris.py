"""Benchmark regenerating Figure 8 (Iris performance panels).

Paper artifact: Figure 8 — verified counts, running time, and memory on the
Iris dataset.  The paper's qualitative findings: Iris is cheap to analyse
(sub-second instances) but tolerates only small poisoning amounts, and depth 1
is anomalously hard to certify.
"""

from repro.experiments.perf_figures import (
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_figure8_iris(benchmark):
    config = bench_config(depths=(1, 2), n_test_points=6)

    def run():
        return compute_performance_figure("iris", config)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("figure8_iris", render_performance_figure(points))

    assert points, "the harness must produce at least the n=1 cells"
    # Iris instances are small: every cell should run in a few seconds at most
    # per point on average (the paper reports <1 s in C++).
    assert all(point.average_seconds < 10.0 for point in points)
    # The Box domain never needs the disjunct budget; the disjunctive domain
    # is allowed to exhaust it at larger n (that is the paper's own
    # memory-growth observation), but not at n = 1.
    assert all(
        point.resource_exhausted == 0 for point in points if point.domain == "box"
    )
    assert all(
        point.resource_exhausted == 0
        for point in points
        if point.poisoning_amount == 1
    )
