"""Benchmark for the §6.3 Box-vs-Disjuncts ablation (experiment E10).

The paper's findings: the disjunctive domain is more precise (verifies more
points) but its time and memory grow much faster with the poisoning amount
and depth, while the Box domain stays cheap.
"""

from repro.experiments.ablations import compare_domains, render_domain_ablation
from repro.experiments.reporting import save_artifact

from conftest import bench_config


def bench_ablation_box_vs_disjuncts(benchmark):
    config = bench_config(
        depths=(1, 2),
        n_test_points=4,
        poisoning_amounts={"mnist17-binary": (1, 8, 64)},
    )

    def run():
        return compare_domains("mnist17-binary", config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_domains", render_domain_ablation(rows))

    assert rows
    # Precision ordering: Disjuncts certifies at least as many points.
    assert all(row.disjuncts_verified >= row.box_verified for row in rows)
    # Somewhere on the grid the extra precision is actually needed.
    assert any(row.disjuncts_verified > row.box_verified for row in rows) or all(
        row.box_verified == row.attempted for row in rows
    )
    # Cost ordering: averaged over the grid, Disjuncts is at least as slow.
    box_time = sum(row.box_seconds for row in rows)
    disjuncts_time = sum(row.disjuncts_seconds for row in rows)
    assert disjuncts_time >= 0.5 * box_time
