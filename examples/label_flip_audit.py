"""Scenario: auditing a classifier against label-contamination attacks.

The removal model of the paper asks "what if some training rows were planted
by an attacker?".  A complementary worry — common when labels come from
crowdsourcing — is that the *labels* of genuine rows were corrupted.  This
example certifies predictions of the MNIST-1-7-like classifier against

* up to ``n`` planted rows (:class:`repro.RemovalPoisoningModel`),
* up to ``f`` flipped labels (:class:`repro.LabelFlipModel`),
* and the combined threat of ``r`` planted rows plus ``f`` flipped labels
  (via the lower-level :class:`repro.poisoning.LabelFlipVerifier` extension).

The two first-class threat models flow through the *same*
``CertificationEngine.verify(request)`` entry point: the engine dispatches
each model to the appropriate abstract-training-set initializer (``⟨T, n⟩``
for removal, ``⟨T, 0, f⟩`` for flips).

Run with:  python examples/label_flip_audit.py
"""

from __future__ import annotations

import argparse

from repro import (
    CertificationEngine,
    CertificationRequest,
    LabelFlipModel,
    RemovalPoisoningModel,
    load_dataset,
)
from repro.poisoning.label_flip import LabelFlipVerifier
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--depth", type=int, default=1)
    parser.add_argument("--digits", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    split = load_dataset("mnist17-binary", scale=args.scale, seed=args.seed)
    print(split.describe())
    print()

    engine = CertificationEngine(
        max_depth=args.depth, domain="either", timeout_seconds=60.0
    )
    combined_verifier = LabelFlipVerifier(max_depth=args.depth)
    digits = split.test.X[: min(args.digits, len(split.test))]

    budgets = (1, 4, 16)
    table = TextTable(
        ["digit", "budget", "removal-robust", "flip-robust", "combined-robust"]
    )
    for budget in budgets:
        # One engine, one entry point, two different threat models.
        removal_report = engine.verify(
            CertificationRequest(split.train, digits, RemovalPoisoningModel(budget))
        )
        flip_report = engine.verify(
            CertificationRequest(
                split.train,
                digits,
                LabelFlipModel(budget, n_classes=split.train.n_classes),
            )
        )
        for index, (removal, flips) in enumerate(
            zip(removal_report.results, flip_report.results)
        ):
            combined = combined_verifier.verify(
                split.train, digits[index], flips=budget, removals=budget
            ).robust
            table.add_row(
                [index, budget, removal.is_certified, flips.is_certified, combined]
            )
    print(table.render())
    print(
        "\nLabel flips are certified with the extension's combined ⟨T, r, f⟩ "
        "abstract domain; 'combined' tolerates both planted rows and flipped "
        "labels simultaneously."
    )


if __name__ == "__main__":
    main()
