"""Scenario: auditing a classifier against label-contamination attacks.

The removal model of the paper asks "what if some training rows were planted
by an attacker?".  A complementary worry — common when labels come from
crowdsourcing — is that the *labels* of genuine rows were corrupted.  This
example uses the :class:`repro.poisoning.LabelFlipVerifier` extension to
certify predictions of the MNIST-1-7-like classifier against

* up to ``f`` flipped labels,
* and the combined threat of ``r`` planted rows plus ``f`` flipped labels,

and compares the certified budgets with the removal-only certificates of the
main verifier.

Run with:  python examples/label_flip_audit.py
"""

from __future__ import annotations

import argparse

from repro import PoisoningVerifier, load_dataset
from repro.poisoning.label_flip import LabelFlipVerifier
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--depth", type=int, default=1)
    parser.add_argument("--digits", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    split = load_dataset("mnist17-binary", scale=args.scale, seed=args.seed)
    print(split.describe())
    print()

    removal_verifier = PoisoningVerifier(
        max_depth=args.depth, domain="either", timeout_seconds=60.0
    )
    flip_verifier = LabelFlipVerifier(max_depth=args.depth)

    budgets = (1, 4, 16)
    table = TextTable(
        ["digit", "budget", "removal-robust", "flip-robust", "combined-robust"]
    )
    for index in range(min(args.digits, len(split.test))):
        x = split.test.X[index]
        for budget in budgets:
            removal = removal_verifier.verify(split.train, x, budget).is_certified
            flips = flip_verifier.verify(split.train, x, flips=budget).robust
            combined = flip_verifier.verify(
                split.train, x, flips=budget, removals=budget
            ).robust
            table.add_row([index, budget, removal, flips, combined])
    print(table.render())
    print(
        "\nLabel flips are certified with the extension's combined ⟨T, r, f⟩ "
        "abstract domain; 'combined' tolerates both planted rows and flipped "
        "labels simultaneously."
    )


if __name__ == "__main__":
    main()
