"""Headline scenario: certifying MNIST-1-7 digits against large poisoning budgets.

The paper's showcase (§2 and §6.2) proves individual MNIST ones-vs-sevens
digits robust even if an attacker contributed dozens to hundreds of training
images — perturbation spaces of 10^170+ datasets that no enumeration could
ever explore.  This example reproduces that workflow on the synthetic
MNIST-1-7 stand-in:

* learn a depth-2 tree and report its accuracy (Table 1's role);
* for a handful of test digits, search for the largest poisoning budget the
  prediction can be certified against (the §6.1 doubling/binary-search
  protocol);
* report the size of the enumeration space that the abstract interpretation
  sidesteps.

Run with:  python examples/mnist_certification.py          (reduced scale)
           python examples/mnist_certification.py --scale 0.3   (larger)
"""

from __future__ import annotations

import argparse

from repro import (
    CertificationEngine,
    DecisionTreeLearner,
    evaluate_accuracy,
    load_dataset,
    max_certified_poisoning,
)
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of the paper's 13,007 training digits to generate")
    parser.add_argument("--depth", type=int, default=2, help="decision-tree depth")
    parser.add_argument("--digits", type=int, default=5, help="number of test digits to certify")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    split = load_dataset("mnist17-binary", scale=args.scale, seed=args.seed)
    print(split.describe())

    tree = DecisionTreeLearner(max_depth=args.depth).fit(split.train)
    accuracy = evaluate_accuracy(tree, split.test.X, split.test.y)
    print(f"Depth-{args.depth} decision tree test accuracy: {accuracy:.1%}\n")

    engine = CertificationEngine(
        max_depth=args.depth, domain="either", timeout_seconds=120.0
    )

    table = TextTable(
        ["digit", "prediction", "max certified n", "poisoned fraction", "log10 |Δn(T)|"]
    )
    for index in range(min(args.digits, len(split.test))):
        x = split.test.X[index]
        search = max_certified_poisoning(
            engine, split.train, x, max_n=len(split.train) // 4
        )
        best = search.max_certified_n
        result = search.results.get(best) or next(iter(search.results.values()))
        table.add_row(
            [
                index,
                split.train.class_names[result.predicted_class],
                best,
                f"{best / len(split.train):.2%}",
                f"{result.log10_num_datasets:.0f}" if best else "-",
            ]
        )
    print("Largest certified poisoning budget per test digit")
    print(table.render())
    print(
        "\nReading the last column: certifying at that budget by enumeration "
        "would require retraining on ~10^k datasets."
    )


if __name__ == "__main__":
    main()
