"""Scenario: measuring the gap between certification and concrete attacks.

Antidote is sound but incomplete: "not certified" does not mean "attackable".
This example quantifies that gap on the Mammographic-Masses-like benchmark by
classifying each test point at a given poisoning budget into three buckets:

* **certified** — the abstract verifier proves the prediction cannot change;
* **attacked** — a concrete removal attack flips the prediction (a proof of
  non-robustness);
* **undetermined** — neither succeeds (the interesting middle ground; the
  paper's precision/efficiency trade-off lives here).

It also reports how the buckets shift between the Box and disjunctive
domains, mirroring the §6.3 discussion.

Run with:  python examples/attack_vs_certify.py
"""

from __future__ import annotations

import argparse

from repro import PoisoningVerifier, greedy_removal_attack, load_dataset, random_removal_attack
from repro.utils.tables import TextTable


def classify_points(split, domain: str, budget: int, depth: int, count: int, seed: int):
    verifier = PoisoningVerifier(max_depth=depth, domain=domain, timeout_seconds=30.0)
    buckets = {"certified": 0, "attacked": 0, "undetermined": 0}
    for index in range(count):
        x = split.test.X[index]
        result = verifier.verify(split.train, x, budget)
        if result.is_certified:
            buckets["certified"] += 1
            continue
        attack = greedy_removal_attack(split.train, x, budget, max_depth=depth, rng=seed)
        if not attack.success:
            attack = random_removal_attack(
                split.train, x, budget, trials=50, max_depth=depth, rng=seed
            )
        buckets["attacked" if attack.success else "undetermined"] += 1
    return buckets


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--budget", type=int, default=2, help="poisoning budget n")
    parser.add_argument("--depth", type=int, default=2)
    parser.add_argument("--points", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    split = load_dataset("mammography", scale=args.scale, seed=args.seed)
    print(split.describe())
    count = min(args.points, len(split.test))
    print(f"Auditing {count} test points at poisoning budget n={args.budget}\n")

    table = TextTable(["domain", "certified", "attacked", "undetermined"])
    for domain in ("box", "disjuncts"):
        buckets = classify_points(
            split, domain, args.budget, args.depth, count, args.seed
        )
        table.add_row([domain, buckets["certified"], buckets["attacked"], buckets["undetermined"]])
    print(table.render())
    print(
        "\nPoints in the 'undetermined' column are where a more precise domain "
        "(or a better attack) would settle the question — the same trade-off "
        "the paper explores with its disjunctive abstraction."
    )


if __name__ == "__main__":
    main()
