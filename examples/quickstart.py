"""Quickstart: certify a prediction against data poisoning.

This walks through the paper's overview example (Figure 2) and then a small
real-valued benchmark:

1. learn a decision tree / trace on the 13-element black-and-white dataset;
2. prove that the classification of the point ``x = 5`` cannot change no
   matter which (up to) two training elements an attacker contributed;
3. cross-check the certificate against exhaustive enumeration of all 92
   poisoned training sets;
4. repeat the exercise on the Iris-like benchmark with the unified
   :class:`repro.CertificationEngine` API: one batch request, an aggregate
   report, and per-point streaming.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CertificationEngine,
    CertificationRequest,
    DecisionTreeLearner,
    RemovalPoisoningModel,
    figure2_dataset,
    learn_trace,
    load_dataset,
    verify_by_enumeration,
)


def overview_example() -> None:
    print("=" * 72)
    print("Part 1 — the paper's overview example (Figure 2)")
    print("=" * 72)
    dataset = figure2_dataset()
    print(dataset.summary())

    tree = DecisionTreeLearner(max_depth=1).fit(dataset)
    print("\nLearned depth-1 tree:")
    print(tree.to_text())

    x = [5.0]
    trace = learn_trace(dataset, x, max_depth=1)
    print(f"\nDTrace(T, {x[0]}): prediction={dataset.class_names[trace.prediction]} "
          f"probabilities={tuple(round(p, 3) for p in trace.class_probabilities)}")

    # How many datasets would naïve enumeration have to retrain on?
    model = RemovalPoisoningModel(2)
    print(f"\n2-poisoning neighbourhood size: {model.num_neighbors(len(dataset))} training sets")

    engine = CertificationEngine(max_depth=1, domain="either")
    result = engine.certify_point(dataset, x, model)
    print(f"Antidote verdict: {result.describe()}")

    oracle = verify_by_enumeration(dataset, x, 2, max_depth=1)
    print(f"Enumeration oracle ({oracle.datasets_checked} retrainings): "
          f"robust={oracle.robust}")
    if result.is_certified:
        assert oracle.robust, "soundness violated!"
    print("Note: on this tiny dataset the abstraction may be inconclusive even "
          "though enumeration shows robustness — the paper's approach is sound, "
          "not complete.")


def iris_example() -> None:
    print()
    print("=" * 72)
    print("Part 2 — certifying predictions on the Iris-like benchmark")
    print("=" * 72)
    split = load_dataset("iris", seed=7)
    print(split.describe())

    engine = CertificationEngine(max_depth=2, domain="either", timeout_seconds=30.0)
    request = CertificationRequest(
        split.train, split.test.X[:10], RemovalPoisoningModel(2)
    )
    # certify_stream yields per-point verdicts in input order as they finish;
    # engine.verify(request, n_jobs=4) runs the same batch on worker processes.
    results = []
    for index, result in enumerate(engine.certify_stream(request)):
        results.append(result)
        label = split.train.class_names[result.predicted_class]
        print(f"  test point {index:2d}: predicted={label:12s} -> {result.status.value}"
              f" ({result.domain}, {result.elapsed_seconds:.2f}s)")
    certified = sum(result.is_certified for result in results)
    print(f"\nCertified {certified}/{len(results)} test points against "
          f"2-poisoning of {len(split.train)} training elements.")


if __name__ == "__main__":
    overview_example()
    iris_example()
