"""Domain scenario: auditing a medical classifier for data-poisoning robustness.

The paper motivates poisoning robustness with settings where training data is
curated from sources an attacker can influence.  Medical decision support is
a natural example: if a hospital's tumour-classification training data could
contain a handful of adversarial records, which individual diagnoses can we
still trust?

This example audits the Wisconsin-Diagnostic-Breast-Cancer-like benchmark:

* for each audited patient record, it reports the prediction, whether it is
  certified robust at a conservative poisoning budget (0.5% of the training
  set), and the largest budget at which the certificate still holds;
* it contrasts certification with a concrete attack search: records that are
  not certified are attacked greedily to see whether the prediction can
  actually be flipped (the gap between the two is the abstraction's
  incompleteness).

Run with:  python examples/medical_robustness_audit.py
"""

from __future__ import annotations

import argparse

from repro import (
    PoisoningVerifier,
    greedy_removal_attack,
    load_dataset,
    max_certified_poisoning,
)
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="fraction of the paper-sized dataset to generate")
    parser.add_argument("--patients", type=int, default=8,
                        help="number of held-out records to audit")
    parser.add_argument("--depth", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    split = load_dataset("wdbc", scale=args.scale, seed=args.seed)
    print(split.describe())
    train = split.train

    conservative_budget = max(1, int(0.005 * len(train)))
    print(f"Conservative audit budget: {conservative_budget} potentially "
          f"malicious records (0.5% of {len(train)})\n")

    verifier = PoisoningVerifier(max_depth=args.depth, domain="either", timeout_seconds=60.0)

    table = TextTable(
        [
            "patient",
            "prediction",
            "certified @ 0.5%",
            "max certified n",
            "attack flips it?",
        ]
    )
    certified_count = 0
    for index in range(min(args.patients, len(split.test))):
        x = split.test.X[index]
        result = verifier.verify(train, x, conservative_budget)
        certified_count += result.is_certified

        search = max_certified_poisoning(verifier, train, x, max_n=len(train) // 8)
        attack_note = "-"
        if not result.is_certified:
            attack = greedy_removal_attack(
                train, x, conservative_budget, max_depth=args.depth, rng=args.seed
            )
            attack_note = "yes" if attack.success else "not found"
        table.add_row(
            [
                index,
                train.class_names[result.predicted_class],
                "yes" if result.is_certified else "no",
                search.max_certified_n,
                attack_note,
            ]
        )

    print(table.render())
    print(
        f"\n{certified_count}/{min(args.patients, len(split.test))} audited "
        "diagnoses are provably unchanged under the conservative poisoning budget."
    )
    print(
        "Records marked 'not found' are in the gap between certification and "
        "attack: the verifier could not prove robustness, but no concrete "
        "attack within budget was found either."
    )


if __name__ == "__main__":
    main()
